// HybridStreamStore: a partially resident StreamStore — the planner-chosen
// hot partitions live in RAM, the rest stream through the device path.
//
// X-Stream's two engines are the endpoints of a residency spectrum: the
// in-memory engine pins everything, the out-of-core engine pins nothing and
// pays device speed even when most of the working set would fit in RAM.
// This store interpolates: a ResidencyPlanner (core/residency.h) solves a
// byte-budgeted pin set from per-partition locality tallies, and for every
// pinned partition
//
//  * vertex states are held in RAM (vertex-file loads/stores become
//    memcpys in/out of the pin — the partition "file" is RAM), and
//  * updates destined to it are appended to an in-RAM buffer during the
//    spill shuffle instead of being written to — and later read back
//    from — its update file, exactly the §3.2 memory-gather optimization
//    applied per partition instead of all-or-nothing.
//
// Unpinned partitions keep the full DeviceStreamStore behavior, including
// local-update absorption and the async double-buffered spill. The
// StreamingPhaseDriver runs unchanged: this class derives from
// DeviceStreamStore and *shadows* (static dispatch through the driver's
// Store parameter, never virtual) the methods whose behavior the resident
// set changes. With an empty pin set every shadowed method degenerates to
// the base behavior, so budget 0 reproduces the out-of-core engine exactly.
//
// Between iterations the store re-plans from the observed per-partition
// update volume: algorithms whose active set shrinks (BFS/SSSP) shed
// update-buffer cost and let more partitions pin; newly pinned partitions
// load their states from the vertex file once, evicted ones write theirs
// back.
#ifndef XSTREAM_CORE_HYBRID_STORE_H_
#define XSTREAM_CORE_HYBRID_STORE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/residency.h"
#include "core/stream_store.h"

namespace xstream {

struct HybridStoreOptions : DeviceStoreOptions {
  // Byte budget for the pin set (vertex states + worst-case update buffers
  // of the resident partitions). A planning target, not an enforced cap: an
  // iteration that out-produces the estimate grows a pinned buffer past it.
  uint64_t pin_budget_bytes = 0;
  // Re-plan the pin set at each iteration boundary from the previous
  // iteration's observed update volume.
  bool replan_between_iterations = true;
};

// Builds the planner inputs from the store's edge tallies: the destination
// and same-partition counts are the per-partition decomposition of the
// PartitionQuality edge cut — the locality signal the streaming partitioners
// optimize. When absorption is on, updates local to their source partition
// never hit the update file anyway, so only cross-partition incoming edges
// count toward a pin's avoided traffic.
std::vector<PartitionResidencyStats> BuildHybridPlanInputs(
    const PartitionLayout& layout, size_t vertex_state_bytes, size_t update_bytes,
    const std::vector<uint64_t>& dst_edge_counts,
    const std::vector<uint64_t>& local_edge_counts, bool absorb_local_updates);

template <EdgeCentricAlgorithm Algo>
class HybridStreamStore : public DeviceStreamStore<Algo> {
 public:
  using Base = DeviceStreamStore<Algo>;
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using GatherPlan = typename Base::GatherPlan;
  using Options = HybridStoreOptions;
  static constexpr bool kPartitionParallel = false;

  HybridStreamStore(ThreadPool& pool, PartitionLayout layout, const Options& opts,
                    StorageDevice& edge_dev, StorageDevice& update_dev,
                    StorageDevice& vertex_dev, const std::string& input_edge_file)
      : Base(pool, std::move(layout), FileResidentBase(opts), edge_dev, update_dev,
             vertex_dev, input_edge_file),
        hopts_(opts),
        planner_(opts.pin_budget_bytes) {
    // Residency is planner-controlled: the base store must keep vertices in
    // files so pinning (and eviction) is a per-partition decision.
    XS_CHECK(!this->vertices_in_memory());
    uint32_t k = layout_.num_partitions();
    pinned_.resize(k);
    pinned_updates_.resize(k);
    observed_updates_.assign(k, 0);
    plan_.resident.assign(k, false);
    ApplyPlan(planner_.Plan(InitialPlanInputs()));
    replans_ = 0;  // the construction-time plan is not a re-plan
  }

  const ResidencyPlan& residency_plan() const { return plan_; }
  const ResidencyPlanner& planner() const { return planner_; }
  uint64_t replans() const { return replans_; }

  // Accounted cost of pinning every partition (the planner inputs' total):
  // the budget at which the store is fully resident. Benches sweep fractions
  // of this.
  uint64_t FullPinBytes() const {
    uint64_t total = 0;
    for (const PartitionResidencyStats& p : InitialPlanInputs()) {
      total += p.vertex_bytes + p.update_buffer_bytes;
    }
    return total;
  }

  // Re-plans against explicit inputs (tests; operators with external
  // knowledge). Automatic re-planning uses the observed update volume — see
  // BeginIteration.
  void Replan(const std::vector<PartitionResidencyStats>& inputs) {
    ApplyPlan(planner_.Plan(inputs));
    PushResidencyStats();
  }

  // ---- Shadowed store surface --------------------------------------------

  void BindStats(RunStats* stats) {
    Base::BindStats(stats);
    PushResidencyStats();
  }

  void BeginIteration() {
    Base::BeginIteration();
    if (hopts_.replan_between_iterations && iterations_seen_ > 0) {
      ApplyPlan(planner_.Plan(ObservedPlanInputs()));
    }
    ++iterations_seen_;
    std::fill(observed_updates_.begin(), observed_updates_.end(), 0);
    PushResidencyStats();
  }

  // Pinned partitions' vertex "file" is RAM: loads and stores are memcpys
  // between the pin and the one-partition scratch the driver works in.
  void LoadPartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(part_states_.data(), pinned_[p].data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::LoadPartition(p);
  }

  void StorePartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(pinned_[p].data(), part_states_.data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::StorePartition(p);
  }

  // Absorption stays armed for unpinned scatter partitions only: a pinned
  // partition's own updates go to its RAM buffer anyway, so the shadow pass
  // would only duplicate work.
  void BeginPartitionScatter(uint32_t s) {
    LoadPartition(s);
    if (!plan_.resident[s] && opts_.absorb_local_updates) {
      std::memcpy(shadow_states_.data(), part_states_.data(),
                  layout_.Size(s) * sizeof(VertexState));
      shadow_dirty_ = false;
      absorb_partition_ = s;
    }
  }

  void EndPartitionScatter(Algo& algo, ConcurrentAppender& appender) {
    uint32_t s = absorb_partition_;
    uint64_t drained_before = this->drained_updates_;
    Base::EndPartitionScatter(algo, appender);
    if (s != Base::kNoAbsorbPartition) {
      observed_updates_[s] += this->drained_updates_ - drained_before;
    }
  }

  // The spill path with a third destination class: chunks for pinned
  // partitions are appended to their RAM buffers on the compute thread
  // (before the async write is submitted, like the absorption gather, so
  // both threads only ever read the shuffled buffer) and excluded from the
  // update-file write.
  void SpillUpdates(Algo& algo, ConcurrentAppender& appender) {
    appender.FlushAll();
    uint64_t n = appender.records();
    if (n == 0) {
      return;
    }
    int slot = write_slot_;
    WaitWriteSlot(slot);
    this->spilled_ = true;
    this->spilled_updates_ += n;
    this->drain_watermark_ = 0;

    Update* src = fill_.template records<Update>();
    Update* dst = alt_[slot].template records<Update>();
    ShuffleOutput<Update> shuffled;
    if (layout_.num_partitions() == 1) {
      std::memcpy(dst, src, n * sizeof(Update));
      shuffled.data = dst;
      shuffled.num_partitions = 1;
      shuffled.slices = {{ChunkRef{0, n}}};
    } else {
      shuffled = ShuffleRecords(pool_, src, dst, n, layout_.num_partitions(),
                                layout_.num_partitions(),
                                [this](const Update& u) { return layout_.PartitionOf(u.dst); });
      XS_CHECK(shuffled.data == dst);
    }

    const uint32_t absorb = absorb_partition_;
    if (absorb != Base::kNoAbsorbPartition) {
      VertexId part_base = layout_.Begin(absorb);
      uint64_t absorbed = 0;
      for (const auto& slice : shuffled.slices) {
        const ChunkRef& c = slice[absorb];
        const Update* rec = shuffled.data + c.begin;
        for (uint64_t i = 0; i < c.count; ++i) {
          if (algo.Gather(shadow_states_[layout_.DenseId(rec[i].dst) - part_base], rec[i])) {
            ++this->absorbed_changed_;
          }
        }
        absorbed += c.count;
      }
      if (absorbed > 0) {
        this->shadow_dirty_ = true;
        this->absorbed_updates_ += absorbed;
      }
    }

    uint64_t submitted_bytes = 0;
    uint64_t kept_bytes = 0;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t routed = 0;
      for (const auto& slice : shuffled.slices) {
        routed += slice[p].count;
      }
      observed_updates_[p] += routed;
      if (p == absorb) {
        continue;
      }
      if (plan_.resident[p]) {
        for (const auto& slice : shuffled.slices) {
          const ChunkRef& c = slice[p];
          pinned_updates_[p].insert(pinned_updates_[p].end(), shuffled.data + c.begin,
                                    shuffled.data + c.begin + c.count);
        }
        kept_bytes += routed * sizeof(Update);
      } else {
        submitted_bytes += routed * sizeof(Update);
      }
    }
    stats_->update_file_bytes += submitted_bytes;
    // A kept byte skips both the update-file append and the gather read-back.
    stats_->avoided_spill_bytes += 2 * kept_bytes;

    const Update* data = shuffled.data;
    auto slices =
        std::make_shared<std::vector<std::vector<ChunkRef>>>(std::move(shuffled.slices));
    pending_write_[slot] = update_dev_.executor().Submit([this, data, slices, absorb] {
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        if (p == absorb || plan_.resident[p]) {
          continue;  // gathered into the shadow / kept in the RAM buffer
        }
        for (const auto& slice : *slices) {
          const ChunkRef& c = slice[p];
          if (c.count > 0) {
            update_dev_.Append(update_files_[p],
                               std::span<const std::byte>(
                                   reinterpret_cast<const std::byte*>(data + c.begin),
                                   c.count * sizeof(Update)));
          }
        }
      }
    });
    write_slot_ ^= 1;
    if (opts_.async_spill) {
      stats_->async_spill_bytes += submitted_bytes;
    } else {
      WaitWriteSlot(slot);
    }
  }

  // Identical to the base transition except that the tail spill must go
  // through the hybrid spill path (base methods dispatch statically, so the
  // base FinishScatter would route pinned partitions' tails to their files).
  GatherPlan FinishScatter(Algo& algo, ConcurrentAppender& appender) {
    GatherPlan plan;
    appender.FlushAll();
    plan.tail_records = appender.records();
    plan.memory_gather = !this->spilled_ && opts_.allow_update_memory_opt;
    if (plan.memory_gather) {
      if (plan.tail_records > 0) {
        plan.resident = ShuffleRecords(
            pool_, fill_.template records<Update>(), alt_[0].template records<Update>(),
            plan.tail_records, layout_.num_partitions(), layout_.num_partitions(),
            [this](const Update& u) { return layout_.PartitionOf(u.dst); });
        for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
          for (const auto& slice : plan.resident.slices) {
            observed_updates_[p] += slice[p].count;
          }
        }
      }
    } else if (plan.tail_records > 0) {
      SpillUpdates(algo, appender);
    }
    WaitAllWrites();

    if (plan.memory_gather && plan.resident.data == alt_[0].template records<Update>()) {
      plan.tmp_a = fill_.template records<Update>();
      plan.tmp_b = alt_[1].template records<Update>();
    } else if (plan.memory_gather && plan.tail_records > 0) {
      plan.tmp_a = alt_[0].template records<Update>();
      plan.tmp_b = alt_[1].template records<Update>();
    } else {
      plan.tmp_a = fill_.template records<Update>();
      plan.tmp_b = alt_[0].template records<Update>();
    }
    return plan;
  }

  void BeginPartitionGather(uint32_t p) { LoadPartition(p); }

  // A pinned partition's update stream is its RAM buffer, chunked at the
  // I/O unit so the driver's gather sub-partitioning sees the same shape as
  // a file stream.
  template <typename F>
  void ForEachUpdateChunk(uint32_t p, F&& f) {
    if (plan_.resident[p]) {
      const std::vector<Update>& buf = pinned_updates_[p];
      uint64_t chunk = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Update));
      for (uint64_t i = 0; i < buf.size(); i += chunk) {
        f(buf.data() + i, std::min<uint64_t>(chunk, buf.size() - i));
      }
      return;
    }
    Base::ForEachUpdateChunk(p, std::forward<F>(f));
  }

  void EndPartitionGather(uint32_t p, bool memory_gather) {
    StorePartition(p);
    if (plan_.resident[p]) {
      pinned_updates_[p].clear();  // consumed; capacity kept for next iteration
    } else if (!memory_gather && opts_.eager_update_truncate) {
      update_dev_.Truncate(update_files_[p], 0);
    }
    uint64_t occupancy = 0;
    for (uint32_t q = 0; q < layout_.num_partitions(); ++q) {
      occupancy += update_dev_.FileSize(update_files_[q]);
    }
    stats_->peak_update_bytes = std::max(stats_->peak_update_bytes, occupancy);
  }

 private:
  static DeviceStoreOptions FileResidentBase(DeviceStoreOptions opts) {
    opts.allow_vertex_memory_opt = false;
    opts.collect_dst_tallies = true;  // the planner prices pins from these
    return opts;
  }

  std::vector<PartitionResidencyStats> InitialPlanInputs() const {
    return BuildHybridPlanInputs(layout_, sizeof(VertexState), sizeof(Update),
                                 this->dst_edge_counts(), this->local_edge_counts(),
                                 opts_.absorb_local_updates);
  }

  // Re-plan inputs: the worst-case one-update-per-edge buffer estimate is
  // replaced by last iteration's observed per-partition volume. Slightly
  // optimistic on the avoided side for unpinned partitions (absorbed
  // updates are counted although they never hit the file), which only makes
  // the planner favor locality-heavy partitions it would pin anyway.
  std::vector<PartitionResidencyStats> ObservedPlanInputs() const {
    std::vector<PartitionResidencyStats> inputs(layout_.num_partitions());
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t vbytes = layout_.Size(p) * sizeof(VertexState);
      uint64_t ubytes = observed_updates_[p] * sizeof(Update);
      inputs[p].vertex_bytes = vbytes;
      inputs[p].update_buffer_bytes = ubytes;
      inputs[p].avoided_bytes_per_iteration = PricePinSavings(vbytes, ubytes);
    }
    return inputs;
  }

  void ApplyPlan(ResidencyPlan next) {
    bool changed = false;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t n = layout_.Size(p);
      if (next.resident[p] && !plan_.resident[p]) {
        pinned_[p].resize(n);
        if (n > 0) {
          vertex_dev_.Read(vertex_files_[p], 0,
                           std::span<std::byte>(reinterpret_cast<std::byte*>(pinned_[p].data()),
                                                n * sizeof(VertexState)));
        }
        changed = true;
      } else if (!next.resident[p] && plan_.resident[p]) {
        if (n > 0) {
          this->StorePartitionFrom(p, pinned_[p].data());
        }
        pinned_[p] = {};
        pinned_updates_[p] = {};
        changed = true;
      }
    }
    if (changed) {
      ++replans_;
    }
    plan_ = std::move(next);
  }

  void PushResidencyStats() {
    stats_->resident_partition_count = plan_.resident_count();
    stats_->resident_bytes = plan_.resident_bytes;
  }

  void CountAvoided(uint64_t bytes) { stats_->avoided_spill_bytes += bytes; }

  using Base::absorb_partition_;
  using Base::alt_;
  using Base::fill_;
  using Base::layout_;
  using Base::opts_;
  using Base::part_states_;
  using Base::pending_write_;
  using Base::pool_;
  using Base::shadow_dirty_;
  using Base::shadow_states_;
  using Base::stats_;
  using Base::update_dev_;
  using Base::update_files_;
  using Base::vertex_dev_;
  using Base::vertex_files_;
  using Base::WaitAllWrites;
  using Base::WaitWriteSlot;
  using Base::write_slot_;

  HybridStoreOptions hopts_;
  ResidencyPlanner planner_;
  ResidencyPlan plan_;
  // Pinned vertex states (by partition, dense order within each) and the
  // in-RAM update buffers of the pinned partitions.
  std::vector<std::vector<VertexState>> pinned_;
  std::vector<std::vector<Update>> pinned_updates_;
  // Updates routed to each destination partition this iteration (spilled,
  // kept in RAM, absorbed and drained alike) — next iteration's buffer
  // estimate.
  std::vector<uint64_t> observed_updates_;
  uint64_t iterations_seen_ = 0;
  uint64_t replans_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_HYBRID_STORE_H_
