// HybridStreamStore: a partially resident StreamStore — the planner-chosen
// hot partitions live in RAM, the rest stream through the device path.
//
// X-Stream's two engines are the endpoints of a residency spectrum: the
// in-memory engine pins everything, the out-of-core engine pins nothing and
// pays device speed even when most of the working set would fit in RAM.
// This store interpolates: a ResidencyPlanner (core/residency.h) solves a
// byte-budgeted pin set from per-partition locality tallies, and for every
// pinned partition
//
//  * vertex states are held in RAM (vertex-file loads/stores become
//    memcpys in/out of the pin — the partition "file" is RAM),
//  * updates destined to it are appended to an in-RAM buffer during the
//    spill shuffle instead of being written to — and later read back
//    from — its update file, exactly the §3.2 memory-gather optimization
//    applied per partition instead of all-or-nothing, and
//  * with `pin_edges` on, its edge stream is captured into a
//    PinnedEdgeCache (core/stream_store.h) on the first device scan and
//    served from RAM afterwards — at a full budget the edge device is
//    never touched after the first iteration and the store runs at
//    memory speed end to end.
//
// Unpinned partitions keep the full DeviceStreamStore behavior, including
// local-update absorption and the async double-buffered spill. The
// StreamingPhaseDriver runs unchanged: this class derives from
// DeviceStreamStore and *shadows* (static dispatch through the driver's
// Store parameter) the load/store/gather methods whose behavior the
// resident set changes, while the spill path is customized through the
// base store's virtual routing hooks (KeepUpdatesResident /
// AppendResidentUpdates / ObserveRoutedUpdates) so the
// shuffle/absorb/append machinery exists exactly once. With an empty pin
// set every customization degenerates to the base behavior, so budget 0
// reproduces the out-of-core engine exactly.
//
// Residency is *incremental*: between iterations the store asks the
// planner for a PlanDelta against the observed per-partition update volume
// — only the partitions whose win (or loss) survived the hysteresis filter
// migrate, and each migration is applied at that partition's own scatter
// boundary (the driver's AtPartitionBoundary hook) instead of in a
// stop-the-world phase. Mid-iteration flips are safe because the gather
// path always drains both possible homes of a partition's updates: its
// in-RAM buffer and its update file. `residency_hysteresis = 0` restores
// the legacy stop-the-world full re-plan (the fig31 baseline).
#ifndef XSTREAM_CORE_HYBRID_STORE_H_
#define XSTREAM_CORE_HYBRID_STORE_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/residency.h"
#include "core/stream_store.h"

namespace xstream {

/// Options for the hybrid store, on top of the full device-store surface.
/// Thread-safety: plain data; set up before constructing the store.
struct HybridStoreOptions : DeviceStoreOptions {
  /// Byte budget for the pin set (vertex states + worst-case update buffers
  /// + cached edge streams of the resident partitions). A planning target,
  /// not an enforced cap: an iteration that out-produces the estimate grows
  /// a pinned buffer past it.
  uint64_t pin_budget_bytes = 0;
  /// Re-plan the pin set at each iteration boundary from the previous
  /// iteration's observed update volume.
  bool replan_between_iterations = true;
  /// EWMA decay for the observed-update-volume signal the re-plan consumes
  /// (CLI --residency-decay): smoothed = decay * previous + (1 - decay) *
  /// observed. 0 (the default) keeps the legacy last-iteration-only signal
  /// bit-for-bit; values toward 1 age in history, damping pin-set churn on
  /// algorithms whose per-iteration volumes oscillate (BFS/WCC frontiers).
  /// Clamped to [0, 1) at construction. The smoothed total is surfaced as
  /// the registry gauge "residency.<file_prefix>.smoothed_update_bytes".
  double residency_decay = 0.0;
  /// Iterations a partition must win (or lose) its place in the target pin
  /// set before the incremental re-plan migrates it. 0 = legacy behavior:
  /// a stop-the-world full re-plan between iterations (the fig31 baseline).
  uint32_t residency_hysteresis = 2;
  /// Cache pinned partitions' edge streams in RAM after their first device
  /// scan, so fully resident partitions stop touching the edge device.
  bool pin_edges = false;
  /// Scheduler runs: the scan source's shared PinnedEdgeCache, so N
  /// concurrent jobs hit one copy of the cached edges. Every pinning store
  /// — shared or private — prices edge bytes into its own planner inputs,
  /// so the pin budget bounds the cache it can request; with a shared
  /// cache that is conservative (jobs pinning the same partition each
  /// charge the one copy), never an under-count, and keeps the plan a
  /// self-consistent knapsack (no budget/cache feedback loop). Null (solo
  /// runs) = the store creates and owns a private cache.
  std::shared_ptr<PinnedEdgeCache> shared_edge_cache;
};

/// Builds the planner inputs from the store's edge tallies: the destination
/// and same-partition counts are the per-partition decomposition of the
/// PartitionQuality edge cut — the locality signal the streaming
/// partitioners optimize. When absorption is on, updates local to their
/// source partition never hit the update file anyway, so only
/// cross-partition incoming edges count toward a pin's avoided traffic.
/// `pinned_edge_counts` (edges by source partition) is non-null when edge
/// pinning prices edge streams into the pin cost and savings.
/// Thread-safety: pure function of its inputs. Blocking: never.
std::vector<PartitionResidencyStats> BuildHybridPlanInputs(
    const PartitionLayout& layout, size_t vertex_state_bytes, size_t update_bytes,
    const std::vector<uint64_t>& dst_edge_counts,
    const std::vector<uint64_t>& local_edge_counts, bool absorb_local_updates,
    const std::vector<uint64_t>* pinned_edge_counts = nullptr);

/// The partially resident store. Same threading contract as the base
/// DeviceStreamStore: one compute loop drives the phase surface (scatter /
/// gather / iteration hooks) from a single thread at a time — the solo
/// driver's loop or the scheduler's single-driver protocol — while spill
/// writes run on the update device's I/O thread. SetPinBudget is the one
/// member safe to call from another thread between the driving thread's
/// calls (the scheduler invokes it at admit/retire boundaries it drives
/// itself, so in practice it is serialized too).
template <EdgeCentricAlgorithm Algo>
class HybridStreamStore : public DeviceStreamStore<Algo> {
 public:
  using Base = DeviceStreamStore<Algo>;
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using GatherPlan = typename Base::GatherPlan;
  using Options = HybridStoreOptions;
  static constexpr bool kPartitionParallel = false;

  /// Constructs the store, runs the setup pass (partitioning the input
  /// edge file — blocks on edge-device I/O) and applies the setup-time pin
  /// plan (blocks on vertex-device reads for the initial promotions).
  HybridStreamStore(ThreadPool& pool, PartitionLayout layout, const Options& opts,
                    StorageDevice& edge_dev, StorageDevice& update_dev,
                    StorageDevice& vertex_dev, const std::string& input_edge_file)
      : Base(pool, std::move(layout), FileResidentBase(opts), edge_dev, update_dev,
             vertex_dev, input_edge_file),
        hopts_(opts),
        planner_(opts.pin_budget_bytes) {
    // Residency is planner-controlled: the base store must keep vertices in
    // files so pinning (and eviction) is a per-partition decision.
    XS_CHECK(!this->vertices_in_memory());
    planner_.set_hysteresis(hopts_.residency_hysteresis);
    if (hopts_.residency_decay < 0.0 || hopts_.residency_decay >= 1.0) {
      XS_LOG(Warning) << "residency decay " << hopts_.residency_decay
                      << " outside [0, 1); clamping";
      hopts_.residency_decay = std::clamp(hopts_.residency_decay, 0.0, 0.999);
    }
    smoothed_gauge_ = &obs::MetricsRegistry::Global().gauge(
        "residency." + opts.file_prefix + ".smoothed_update_bytes");
    uint32_t k = layout_.num_partitions();
    pinned_.resize(k);
    pinned_updates_.resize(k);
    observed_updates_.assign(k, 0);
    smoothed_updates_.assign(k, 0.0);
    pending_promote_.assign(k, 0);
    pending_evict_.assign(k, 0);
    plan_.resident.assign(k, false);
    if (hopts_.pin_edges) {
      owns_edge_cache_ = hopts_.shared_edge_cache == nullptr;
      edge_cache_ = owns_edge_cache_
                        ? std::make_shared<PinnedEdgeCache>(
                              k, std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Edge)))
                        : hopts_.shared_edge_cache;
    }
    ApplyPlan(planner_.Plan(InitialPlanInputs()));
    replans_ = 0;  // the construction-time plan is not a re-plan
  }

  /// Releases this store's shares of the (possibly scheduler-shared) edge
  /// cache, so a retired job's cached edge streams are freed instead of
  /// leaking for the scan source's lifetime.
  ~HybridStreamStore() override {
    if (edge_cache_ != nullptr) {
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        if (plan_.resident[p]) {
          edge_cache_->Release(p);
        }
      }
    }
  }

  /// The currently applied pin set. During an iteration with staged
  /// migrations the bitmap transitions partition by partition as scatter
  /// boundaries pass; the byte/savings accounting already reflects the
  /// staged target.
  const ResidencyPlan& residency_plan() const { return plan_; }
  const ResidencyPlanner& planner() const { return planner_; }
  /// Re-plans that changed (or staged a change to) the pin set.
  uint64_t replans() const { return replans_; }

  /// Accounted cost of pinning every partition (the planner inputs' total,
  /// including edge streams when pin_edges is on): the budget at which the
  /// store is fully resident. Benches sweep fractions of this.
  uint64_t FullPinBytes() const {
    uint64_t total = 0;
    for (const PartitionResidencyStats& p : InitialPlanInputs()) {
      total += p.cost();
    }
    return total;
  }

  /// Stop-the-world re-plan against explicit inputs (tests; operators with
  /// external knowledge). Migrates immediately — blocks on vertex-device
  /// I/O for the state moves. Must be called between iterations, from the
  /// driving thread. Automatic re-planning uses the observed update volume
  /// and the incremental delta path instead — see BeginIteration.
  void Replan(const std::vector<PartitionResidencyStats>& inputs) {
    ApplyPlan(planner_.Plan(inputs));
    PushResidencyStats();
  }

  /// Budget handed down by the multi-job scheduler as jobs come and go.
  /// Takes effect at the next iteration boundary — including a first
  /// boundary with no observations yet (scheduler admission), which
  /// re-plans against the setup-time inputs — never mid-iteration (the
  /// pinned update buffers hold mid-iteration state, so re-planning
  /// immediately would drop updates). Bypasses the hysteresis (budget
  /// reassignments must land promptly) but the resulting migrations still
  /// apply one partition at a time, at scatter boundaries. Honored even
  /// when automatic re-planning is off. Never blocks.
  void SetPinBudget(uint64_t bytes) {
    planner_.set_budget_bytes(bytes);
    budget_dirty_ = true;
  }

  // ---- Shadowed store surface --------------------------------------------

  void BindStats(RunStats* stats) {
    Base::BindStats(stats);
    PushResidencyStats();
  }

  /// Iteration boundary: runs the incremental re-plan (PlanDelta with
  /// hysteresis) against the observed update volume and stages the
  /// resulting migrations; they apply as the scatter reaches each
  /// partition's boundary. With residency_hysteresis == 0, falls back to
  /// the legacy stop-the-world full re-plan (blocks on the vertex-device
  /// I/O of every migration at once).
  void BeginIteration() {
    Base::BeginIteration();
    bool first = iterations_seen_ == 0;
    if (!first) {
      // Age the volume signal: with decay 0 the smoothed series IS last
      // iteration's observation (legacy behavior, bit-for-bit).
      double total = 0.0;
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        smoothed_updates_[p] = hopts_.residency_decay * smoothed_updates_[p] +
                               (1.0 - hopts_.residency_decay) *
                                   static_cast<double>(observed_updates_[p]);
        total += smoothed_updates_[p];
      }
      smoothed_gauge_->Set(total * sizeof(Update));
    }
    if ((!first && hopts_.replan_between_iterations) || budget_dirty_) {
      // A budget assigned before the first iteration (scheduler admission)
      // has no observed volumes yet; re-plan from the setup tallies.
      std::vector<PartitionResidencyStats> inputs =
          first ? InitialPlanInputs() : ObservedPlanInputs();
      if (hopts_.residency_hysteresis == 0) {
        ApplyPlan(planner_.Plan(inputs));
      } else {
        StageDelta(planner_.PlanDelta(plan_, inputs, /*force=*/budget_dirty_));
      }
      budget_dirty_ = false;
    }
    ++iterations_seen_;
    std::fill(observed_updates_.begin(), observed_updates_.end(), 0);
    PushResidencyStats();
  }

  /// Partition boundary (driver hook): applies the staged migration for
  /// partition p, if any. Promotions read p's states from the vertex file
  /// into the pin; evictions write the pin back — one partition's worth of
  /// blocking vertex-device I/O, amortized across the iteration instead of
  /// bundled into a stop-the-world phase. An evicted partition's already
  /// collected in-RAM updates stay buffered; the gather drains both the
  /// buffer and the update file, so mid-iteration flips lose nothing.
  void AtPartitionBoundary(uint32_t p) {
    if (pending_evict_[p]) {
      pending_evict_[p] = 0;
      EvictPartition(p);
      PushResidencyStats();
    } else if (pending_promote_[p]) {
      pending_promote_[p] = 0;
      PromotePartition(p);
      PushResidencyStats();
    }
  }

  /// Pinned partitions' vertex "file" is RAM: loads and stores are memcpys
  /// between the pin and the one-partition scratch the driver works in.
  void LoadPartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(part_states_.data(), pinned_[p].data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::LoadPartition(p);
  }

  void StorePartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(pinned_[p].data(), part_states_.data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::StorePartition(p);
  }

  /// Absorption stays armed for unpinned scatter partitions only: a pinned
  /// partition's own updates go to its RAM buffer anyway, so the shadow
  /// pass would only duplicate work.
  void BeginPartitionScatter(uint32_t s) {
    LoadPartition(s);
    if (!plan_.resident[s] && opts_.absorb_local_updates) {
      std::memcpy(shadow_states_.data(), part_states_.data(),
                  layout_.Size(s) * sizeof(VertexState));
      shadow_dirty_ = false;
      absorb_partition_ = s;
    }
  }

  /// Streams partition s's edges: from the PinnedEdgeCache when a sealed
  /// capture exists (no device I/O at all), capturing into the cache while
  /// streaming when s is pinned with pin_edges on, from the edge device
  /// otherwise (blocks on reads the prefetch missed, like the base).
  template <typename F>
  void ForEachEdgeChunk(uint32_t s, F&& f) {
    if (edge_cache_ != nullptr) {
      uint64_t served = 0;
      auto stream = [&](const PinnedEdgeCache::ChunkConsumer& consumer) {
        Base::ForEachEdgeChunk(s, consumer);
      };
      switch (edge_cache_->ServeOrCapture(s, f, stream, &served)) {
        case PinnedEdgeCache::ServeResult::kServed:
          stats_->edge_reads_avoided_bytes += served;
          return;
        case PinnedEdgeCache::ServeResult::kCaptured:
          stats_->pinned_edge_bytes = edge_cache_->bytes();
          return;
        case PinnedEdgeCache::ServeResult::kMiss:
          break;
      }
    }
    Base::ForEachEdgeChunk(s, std::forward<F>(f));
  }

  void EndPartitionScatter(Algo& algo, ConcurrentAppender& appender) {
    uint32_t s = absorb_partition_;
    uint64_t drained_before = this->drained_updates_;
    Base::EndPartitionScatter(algo, appender);
    if (s != Base::kNoAbsorbPartition) {
      observed_updates_[s] += this->drained_updates_ - drained_before;
    }
  }

  // The spill path itself lives in the base store; the hybrid routing — a
  // third destination class where chunks for pinned partitions are appended
  // to their RAM buffers on the compute thread and excluded from the
  // update-file write — plugs into its virtual hooks, so the base
  // SpillUpdates / FinishScatter (including the tail spill) serve both
  // stores from one copy.
  bool KeepUpdatesResident(uint32_t p) const override { return plan_.resident[p]; }

  void AppendResidentUpdates(uint32_t p, const Update* rec, uint64_t count) override {
    pinned_updates_[p].insert(pinned_updates_[p].end(), rec, rec + count);
  }

  void ObserveRoutedUpdates(uint32_t p, uint64_t count) override {
    observed_updates_[p] += count;
  }

  /// Cancelled mid-scatter: drain the base spill state, then discard the
  /// pinned partitions' partially collected RAM buffers too. Blocks until
  /// in-flight spill writes land. The store is only safe to destroy
  /// afterwards, not to resume (see the base contract).
  void AbortScatter() {
    Base::AbortScatter();
    for (auto& buf : pinned_updates_) {
      buf.clear();
    }
  }

  void BeginPartitionGather(uint32_t p) { LoadPartition(p); }

  /// A partition's update stream this iteration may live in its RAM buffer,
  /// its update file, or — when its residency flipped at a mid-iteration
  /// boundary — both. Drain the buffer first (chunked at the I/O unit so
  /// the driver's gather sub-partitioning sees the same shape as a file
  /// stream), then any file bytes. Steady-state pinned partitions have an
  /// empty file, so the file probe costs one size query and no I/O.
  template <typename F>
  void ForEachUpdateChunk(uint32_t p, F&& f) {
    const std::vector<Update>& buf = pinned_updates_[p];
    if (!buf.empty()) {
      uint64_t chunk = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Update));
      for (uint64_t i = 0; i < buf.size(); i += chunk) {
        f(buf.data() + i, std::min<uint64_t>(chunk, buf.size() - i));
      }
    }
    if (update_dev_.FileSize(update_files_[p]) > 0) {
      Base::ForEachUpdateChunk(p, std::forward<F>(f));
    }
  }

  /// A pinned partition's gather stores the states back into the pin and
  /// recycles its RAM update buffer; unpinned partitions keep the full
  /// base path, releasing any post-eviction RAM leftovers. Updates spilled
  /// to p's file before a mid-iteration promotion get the exact base
  /// treatment once consumed — eager TRIM, or the FinishGather sweep when
  /// the ablation turns eager truncation off — and the peak-occupancy
  /// sample runs at every gather boundary either way (mid-iteration flips
  /// mean files can change even at a pinned partition's gather).
  void EndPartitionGather(uint32_t p, bool memory_gather) {
    if (!plan_.resident[p]) {
      pinned_updates_[p] = {};  // post-eviction leftovers were just gathered
      Base::EndPartitionGather(p, memory_gather);
      return;
    }
    StorePartition(p);
    pinned_updates_[p].clear();  // consumed; capacity kept for next iteration
    if (!memory_gather && opts_.eager_update_truncate &&
        update_dev_.FileSize(update_files_[p]) > 0) {
      update_dev_.Truncate(update_files_[p], 0);
    }
    this->SampleUpdateOccupancy();
  }

  /// Approximate RAM held for this store's lifetime (admission pricing for
  /// the multi-job scheduler): the base buffers plus the edge-cache bytes a
  /// privately owned cache currently holds. A scheduler-shared cache is not
  /// added here — its bytes are already covered by the pin budgets, since
  /// every pinning job prices edge bytes into its plan (see
  /// HybridStoreOptions::shared_edge_cache).
  uint64_t ResidentFootprintBytes() const {
    uint64_t total = Base::ResidentFootprintBytes();
    if (edge_cache_ != nullptr && owns_edge_cache_) {
      total += edge_cache_->bytes();
    }
    return total;
  }

 private:
  static DeviceStoreOptions FileResidentBase(DeviceStoreOptions opts) {
    opts.allow_vertex_memory_opt = false;
    opts.collect_dst_tallies = true;  // the planner prices pins from these
    return opts;
  }

  // Every pinning store prices edge bytes into its plan, shared cache or
  // not — the pin budget must see the full cost of what it requests, or a
  // budget/cache feedback loop forms (pin -> cache grows -> budget charged
  // elsewhere shrinks -> forced evict -> cache shrinks -> re-promote, ...).
  bool PriceEdgesInPlan() const { return hopts_.pin_edges; }

  std::vector<PartitionResidencyStats> InitialPlanInputs() const {
    return BuildHybridPlanInputs(layout_, sizeof(VertexState), sizeof(Update),
                                 this->dst_edge_counts(), this->local_edge_counts(),
                                 opts_.absorb_local_updates,
                                 PriceEdgesInPlan() ? &this->src_edge_counts() : nullptr);
  }

  // Re-plan inputs: the worst-case one-update-per-edge buffer estimate is
  // replaced by the (EWMA-smoothed, see residency_decay) observed
  // per-partition volume. Slightly optimistic on the avoided side for
  // unpinned partitions (absorbed updates are counted although they never
  // hit the file), which only makes the planner favor locality-heavy
  // partitions it would pin anyway.
  std::vector<PartitionResidencyStats> ObservedPlanInputs() const {
    std::vector<PartitionResidencyStats> inputs(layout_.num_partitions());
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t vbytes = layout_.Size(p) * sizeof(VertexState);
      uint64_t ubytes = static_cast<uint64_t>(smoothed_updates_[p] + 0.5) * sizeof(Update);
      uint64_t ebytes =
          PriceEdgesInPlan() ? this->src_edge_counts()[p] * sizeof(Edge) : 0;
      inputs[p].vertex_bytes = vbytes;
      inputs[p].update_buffer_bytes = ubytes;
      inputs[p].edge_bytes = ebytes;
      inputs[p].avoided_bytes_per_iteration = PricePinSavings(vbytes, ubytes, ebytes);
    }
    return inputs;
  }

  // One promotion: p's states move vertex file -> RAM pin; its edge stream
  // becomes capture-eligible. Counted as migration traffic.
  void PromotePartition(uint32_t p) {
    obs::TraceSpan span("migration", "residency", p);
    obs::MetricsRegistry::Global().counter("residency.promotions").Add();
    uint64_t n = layout_.Size(p);
    uint64_t bytes = n * sizeof(VertexState);
    pinned_[p].resize(n);
    if (n > 0) {
      vertex_dev_.Read(vertex_files_[p], 0,
                       std::span<std::byte>(reinterpret_cast<std::byte*>(pinned_[p].data()),
                                            bytes));
    }
    plan_.resident[p] = true;
    if (edge_cache_ != nullptr) {
      edge_cache_->Request(p);
    }
    ++stats_->promotions;
    stats_->migration_bytes += bytes;
  }

  // One eviction: p's states move RAM pin -> vertex file; its cached edges
  // are released. The in-RAM update buffer is NOT dropped — updates already
  // routed there this iteration are gathered from it (see
  // ForEachUpdateChunk) and released at gather end.
  void EvictPartition(uint32_t p) {
    obs::TraceSpan span("migration", "residency", p);
    obs::MetricsRegistry::Global().counter("residency.evictions").Add();
    uint64_t n = layout_.Size(p);
    uint64_t bytes = n * sizeof(VertexState);
    if (n > 0) {
      this->StorePartitionFrom(p, pinned_[p].data());
    }
    pinned_[p] = {};
    plan_.resident[p] = false;
    if (edge_cache_ != nullptr) {
      edge_cache_->Release(p);
      stats_->pinned_edge_bytes = edge_cache_->bytes();
    }
    ++stats_->evictions;
    stats_->migration_bytes += bytes;
  }

  // Stop-the-world plan application (construction, explicit Replan, and the
  // hysteresis-0 legacy mode): every differing partition migrates now.
  void ApplyPlan(ResidencyPlan next) {
    bool changed = false;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (next.resident[p] && !plan_.resident[p]) {
        PromotePartition(p);
        changed = true;
      } else if (!next.resident[p] && plan_.resident[p]) {
        EvictPartition(p);
        pinned_updates_[p] = {};  // between iterations: empty; free capacity
        changed = true;
      }
    }
    if (changed) {
      ++replans_;
    }
    plan_ = std::move(next);
  }

  // Incremental plan application: record which partitions migrate; each
  // lands at its own scatter boundary (AtPartitionBoundary). The byte and
  // savings accounting jumps to the delta's target immediately — it is a
  // planning gauge, while the resident bitmap tracks physical state.
  void StageDelta(ResidencyDelta delta) {
    plan_.resident_bytes = delta.plan.resident_bytes;
    plan_.avoided_bytes_per_iteration = delta.plan.avoided_bytes_per_iteration;
    if (delta.empty()) {
      return;
    }
    for (uint32_t p : delta.evict) {
      pending_evict_[p] = 1;
    }
    for (uint32_t p : delta.promote) {
      pending_promote_[p] = 1;
    }
    ++replans_;
  }

  void PushResidencyStats() {
    stats_->resident_partition_count = plan_.resident_count();
    stats_->resident_bytes = plan_.resident_bytes;
    stats_->pinned_edge_bytes = edge_cache_ != nullptr ? edge_cache_->bytes() : 0;
  }

  void CountAvoided(uint64_t bytes) { stats_->avoided_spill_bytes += bytes; }

  using Base::absorb_partition_;
  using Base::layout_;
  using Base::opts_;
  using Base::part_states_;
  using Base::shadow_dirty_;
  using Base::shadow_states_;
  using Base::stats_;
  using Base::update_dev_;
  using Base::update_files_;
  using Base::vertex_dev_;
  using Base::vertex_files_;

  HybridStoreOptions hopts_;
  ResidencyPlanner planner_;
  ResidencyPlan plan_;
  // Pinned vertex states (by partition, dense order within each) and the
  // in-RAM update buffers of the pinned partitions.
  std::vector<std::vector<VertexState>> pinned_;
  std::vector<std::vector<Update>> pinned_updates_;
  // Updates routed to each destination partition this iteration (spilled,
  // kept in RAM, absorbed and drained alike) — next iteration's buffer
  // estimate.
  std::vector<uint64_t> observed_updates_;
  // EWMA of observed_updates_ across iterations (residency_decay); this is
  // what ObservedPlanInputs actually feeds the planner.
  std::vector<double> smoothed_updates_;
  obs::Gauge* smoothed_gauge_ = nullptr;
  // Migrations staged by the last PlanDelta, awaiting their partition's
  // scatter boundary.
  std::vector<uint8_t> pending_promote_;
  std::vector<uint8_t> pending_evict_;
  // Pinned partitions' edge streams (pin_edges): privately owned in solo
  // runs, the scan source's shared copy under the scheduler.
  std::shared_ptr<PinnedEdgeCache> edge_cache_;
  bool owns_edge_cache_ = false;
  uint64_t iterations_seen_ = 0;
  uint64_t replans_ = 0;
  bool budget_dirty_ = false;  // SetPinBudget awaiting the next boundary
};

}  // namespace xstream

#endif  // XSTREAM_CORE_HYBRID_STORE_H_
