// Run statistics reported by both engines.
//
// These feed the evaluation directly: iteration counts, the wasted-edge
// percentage and the runtime/streaming ratio reproduce Fig 12b; device busy
// time yields the simulated runtimes of the out-of-core experiments.
#ifndef XSTREAM_CORE_STATS_H_
#define XSTREAM_CORE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace xstream {

struct IterationStats {
  uint64_t iteration = 0;
  uint64_t edges_streamed = 0;
  uint64_t updates_generated = 0;
  uint64_t wasted_edges = 0;  // streamed edges that produced no update
  uint64_t vertices_changed = 0;  // gathers that mutated state
  // Updates gathered straight into the partition being scattered instead of
  // being written to its update file (out-of-core locality optimization;
  // counted inside updates_generated).
  uint64_t updates_absorbed = 0;
  double seconds = 0.0;
};

struct RunStats {
  uint64_t iterations = 0;
  uint64_t edges_streamed = 0;
  uint64_t updates_generated = 0;
  uint64_t wasted_edges = 0;
  uint64_t updates_absorbed = 0;  // see IterationStats::updates_absorbed
  uint64_t steals = 0;  // partitions obtained by work stealing

  double setup_seconds = 0.0;      // partitioning the unordered edge list
  double compute_seconds = 0.0;    // wall time of the iteration loop
  double streaming_seconds = 0.0;  // time inside scatter/shuffle/gather
  // Multi-job scheduler runs: time between submission and admission (budget
  // slot + next partition boundary). Zero for solo engine runs.
  double queue_seconds = 0.0;

  // Out-of-core runs on SimDevices: max busy time across devices. The
  // modelled runtime is the max of compute wall time and device busy time
  // (prefetch keeps devices and CPU overlapped, §3.3).
  double sim_io_seconds = 0.0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // Peak bytes held in update files (out-of-core engine; TRIM ablation).
  uint64_t peak_update_bytes = 0;
  // Total bytes appended to update files over the run: the scatter->gather
  // traffic the streaming partitioner is trying to shrink (fig 27).
  uint64_t update_file_bytes = 0;
  // Update-file bytes submitted to the device's I/O thread without waiting
  // for completion (§3.3 compute/write overlap; fig 28). Zero when the
  // engine runs with async_spill off or never spills.
  uint64_t async_spill_bytes = 0;
  // Wall time the scatter path spent blocked on earlier spill writes (buffer
  // reuse waits plus the end-of-scatter drain). The overlap the async spill
  // pipeline buys shows up as this number shrinking.
  double spill_wait_seconds = 0.0;
  // Wall time the gather phase spent blocked on update-file reads that the
  // StreamReader prefetch had not finished — the read-side complement of
  // spill_wait_seconds.
  double gather_wait_seconds = 0.0;

  // Hybrid (partially resident) engine: partitions the residency planner
  // pinned in RAM for the latest iteration, the planner-accounted bytes that
  // pinning holds resident (vertex states + worst-case update buffers), and
  // the device traffic the pins removed (vertex-file loads/stores skipped
  // plus update bytes kept in RAM instead of written to and read back from
  // update files). Zero on the pure in-memory / out-of-core engines.
  uint64_t resident_partition_count = 0;
  uint64_t resident_bytes = 0;
  uint64_t avoided_spill_bytes = 0;
  // Incremental residency (PlanDelta): pin-set migrations applied over the
  // run — partitions written back to the vertex files (evictions), loaded
  // into RAM pins (promotions), and the vertex-state bytes those migrations
  // moved in either direction. Full re-plans (hysteresis 0) count here too,
  // so the fig31 baseline comparison reads off the same counters.
  uint64_t evictions = 0;
  uint64_t promotions = 0;
  uint64_t migration_bytes = 0;
  // Edge-stream pinning (--pin-edges): bytes of partition edge streams
  // currently cached in RAM (a gauge; with the scheduler's shared cache
  // every attached job reports the one shared copy), and the cumulative
  // edge bytes served from that cache instead of the edge device.
  uint64_t pinned_edge_bytes = 0;
  uint64_t edge_reads_avoided_bytes = 0;

  std::vector<IterationStats> per_iteration;

  double WallSeconds() const { return setup_seconds + compute_seconds; }

  // Modelled end-to-end runtime (equals wall time for in-memory runs).
  double RuntimeSeconds() const { return std::max(WallSeconds(), sim_io_seconds); }

  // Fig 12b: "ratio of total execution time to streaming time".
  double StreamingRatio() const {
    double stream = std::max(streaming_seconds, sim_io_seconds);
    return stream > 0 ? RuntimeSeconds() / stream : 0.0;
  }

  // Fig 12b: "percentage of edges that were streamed and along which no
  // updates were sent".
  double WastedEdgePercent() const {
    return edges_streamed > 0
               ? 100.0 * static_cast<double>(wasted_edges) / static_cast<double>(edges_streamed)
               : 0.0;
  }

  // One JSON object holding every field above plus the derived ratios; the
  // schema is identical for all three engine modes (fields an engine does
  // not use are present as zeroes — tests/obs_test.cc pins this down). The
  // CLI's --stats-json=FILE writes exactly this. `include_iterations`
  // controls the "per_iteration" array (always present, possibly empty).
  std::string ToJson(bool include_iterations = true) const;

  // Mirrors every scalar field into the metrics registry under
  // `prefix + "."` (counters for counts/bytes, gauges for seconds and
  // residency levels) so run statistics appear in registry snapshots next
  // to the natively instrumented I/O and scheduler metrics.
  void PublishTo(const std::string& prefix) const;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_STATS_H_
