// StreamStore: where a streaming computation's edge streams, update streams
// and vertex state physically live.
//
// X-Stream's scatter-shuffle-gather loop (paper §3, §4) is the same whether
// the streams sit in RAM or on storage devices; only the residency mechanics
// differ. The StreamingPhaseDriver (core/phase_runtime.h) owns the loop and
// is parameterized over one of the two stores here:
//
//  * MemoryStreamStore — the in-memory engine's substrate (§4): three stream
//    buffers sized for the whole edge/update list, edges pre-shuffled into
//    per-partition chunks once at setup, all vertex state resident in one
//    dense-ordered array. Never spills.
//  * DeviceStreamStore — the out-of-core engine's substrate (§3): one edge,
//    update and vertex file per streaming partition on StorageDevices,
//    chunked StreamReader input, and a spill path that shuffles a filled
//    output buffer and appends the per-partition chunks to the update files
//    on the device's I/O thread. Spill writes are double-buffered: the
//    shuffle of batch k+1 runs while the write of batch k is in flight
//    (§3.3 "writes to disk of the chunks in one output buffer are
//    overlapped with computing ... into another output buffer"), waiting
//    only when a shuffle destination buffer is still owned by the write two
//    batches back. `async_spill = false` degrades to a fully synchronous
//    spill (the fig28 baseline).
//
// The common surface the driver relies on is captured by the StreamStoreFor
// concept below; the phase-shape extensions (partition-parallel scatter for
// the memory store, sequential partition streaming with spills for the
// device store) are selected by the store's kPartitionParallel trait.
#ifndef XSTREAM_CORE_STREAM_STORE_H_
#define XSTREAM_CORE_STREAM_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "buffers/shuffler.h"
#include "buffers/stream_buffer.h"
#include "core/algorithm.h"
#include "core/partition.h"
#include "core/stats.h"
#include "core/stream_codec.h"
#include "graph/types.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/device.h"
#include "storage/io_executor.h"
#include "storage/stream_io.h"
#include "threads/concurrent_appender.h"
#include "threads/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

// The store surface the driver's residency-generic code (vertex iteration,
// checkpointing, gather targets) is written against. Phase-shape specifics
// are intentionally outside the concept: the driver selects them with
// `if constexpr (Store::kPartitionParallel)`.
template <typename S>
concept StreamStoreFor = requires(S s, const S cs, uint32_t p, RunStats stats) {
  typename S::VertexState;
  typename S::Update;
  { S::kPartitionParallel } -> std::convertible_to<bool>;
  { s.pool() } -> std::same_as<ThreadPool&>;
  { cs.layout() } -> std::same_as<const PartitionLayout&>;
  { cs.all_resident() } -> std::convertible_to<bool>;
  { s.resident_states() } -> std::same_as<typename S::VertexState*>;
  { s.partition_states() } -> std::same_as<typename S::VertexState*>;
  { s.LoadPartition(p) } -> std::same_as<void>;
  { s.StorePartition(p) } -> std::same_as<void>;
  { s.BindStats(&stats) } -> std::same_as<void>;
  { s.BeginIteration() } -> std::same_as<void>;
};

// ---------------------------------------------------------------------------
// Shared edge-partitioning plumbing.
//
// The device store's setup and ingest paths, and the multi-job scheduler's
// shared-scan substrate (src/scheduler/scan_source.h), all run the same
// pass: stream unordered edges, shuffle each loaded stretch by source
// partition, append the chunks to per-partition files, and optionally tally
// destination/local edges for the residency planner.

struct EdgeShuffleTallies {
  std::vector<uint64_t>* src = nullptr;    // edges by source partition
  std::vector<uint64_t>* dst = nullptr;    // edges by destination partition
  std::vector<uint64_t>* local = nullptr;  // src and dst share the partition
  bool collect_dst = false;                // one extra PartitionOf per edge
};

// Shuffles `count` edges sitting at the start of `data` by source partition
// (`scratch` must also hold `count` records) and appends each partition's
// spans to its file. Callers guarantee no spill write owns `scratch`.
inline void ShuffleAppendEdgeBlock(ThreadPool& pool, const PartitionLayout& layout,
                                   StorageDevice& dev, const std::vector<FileId>& files,
                                   Edge* data, Edge* scratch, uint64_t count,
                                   const EdgeShuffleTallies& tallies, size_t stage_bytes = 0) {
  if (count == 0) {
    return;
  }
  auto shuffled =
      ShuffleRecords(pool, data, scratch, count, layout.num_partitions(),
                     layout.num_partitions(),
                     [&layout](const Edge& e) { return layout.PartitionOf(e.src); },
                     stage_bytes);
  for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
    for (const auto& slice : shuffled.slices) {
      const ChunkRef& c = slice[p];
      if (c.count > 0) {
        dev.Append(files[p],
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(shuffled.data + c.begin),
                       c.count * sizeof(Edge)));
        if (tallies.src != nullptr) {
          (*tallies.src)[p] += c.count;
        }
        // Within p's slice every edge has source partition p, so one
        // PartitionOf per edge classifies it as local or cross-partition.
        if (tallies.collect_dst) {
          for (uint64_t i = 0; i < c.count; ++i) {
            uint32_t pd = layout.PartitionOf(shuffled.data[c.begin + i].dst);
            ++(*tallies.dst)[pd];
            if (pd == p) {
              ++(*tallies.local)[p];
            }
          }
        }
      }
    }
  }
}

// Streams the unordered input file and partitions it through the block
// shuffle above, batching up to `capacity_bytes` of edges per shuffle.
inline void PartitionEdgeFileToParts(ThreadPool& pool, const PartitionLayout& layout,
                                     StorageDevice& in_dev, const std::string& input_file,
                                     StorageDevice& out_dev, const std::vector<FileId>& files,
                                     Edge* fill, Edge* scratch, uint64_t capacity_bytes,
                                     size_t io_unit_bytes,
                                     const EdgeShuffleTallies& tallies, size_t stage_bytes = 0) {
  FileId input = in_dev.Open(input_file);
  size_t read_chunk =
      std::max<size_t>(sizeof(Edge), io_unit_bytes / sizeof(Edge) * sizeof(Edge));
  XS_CHECK_LE(read_chunk, capacity_bytes)
      << "edge-partitioning buffer smaller than one read chunk";
  StreamReader reader(in_dev, input, read_chunk);
  uint64_t buffered = 0;
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    XS_CHECK_EQ(chunk.size() % sizeof(Edge), 0u);
    uint64_t n = chunk.size() / sizeof(Edge);
    if ((buffered + n) * sizeof(Edge) > capacity_bytes) {
      ShuffleAppendEdgeBlock(pool, layout, out_dev, files, fill, scratch, buffered, tallies,
                             stage_bytes);
      buffered = 0;
    }
    std::memcpy(reinterpret_cast<std::byte*>(fill) + buffered * sizeof(Edge), chunk.data(),
                chunk.size());
    buffered += n;
  }
  ShuffleAppendEdgeBlock(pool, layout, out_dev, files, fill, scratch, buffered, tallies,
                         stage_bytes);
}

// ---------------------------------------------------------------------------
// PinnedEdgeCache: per-partition edge streams cached in RAM.
//
// A fully resident hybrid partition still pays one device pass per
// iteration for its edge stream — the last traffic between it and true
// memory speed. This cache closes that gap: a partition whose residency
// plan requests edge pinning captures its chunks during the next device
// scan and serves every later ForEachEdgeChunk from RAM, so at a full pin
// budget the edge device is never touched after the first iteration.
//
// One cache can back several consumers: the solo HybridStreamStore owns a
// private instance, while in scheduler runs the DeviceScanSource owns one
// shared instance that every attached hybrid job Request()s partitions
// into — N concurrent jobs hit one copy of the cached edges, mirroring how
// attach mode already shares the edge files themselves. Requests are
// refcounted so a partition stays cached while any job still pins it.
//
// Thread-safety: mutators (Request/Release/capture/seal) are serialized by
// the caller — the store's compute loop, or the scheduler's single-driver
// protocol — and additionally take an internal mutex so driver-role
// handoffs across threads see consistent state. TryServe reads sealed data
// lock-free behind an acquire load; sealed chunk data is immutable until
// the (caller-serialized) Release that drops it. No call blocks on I/O.
class PinnedEdgeCache {
 public:
  /// `chunk_edges` is the granularity served back to readers — pass the
  /// same io-unit-derived chunk size the device reader uses, so cached and
  /// streamed scans deliver identically shaped chunks.
  PinnedEdgeCache(uint32_t num_partitions, uint64_t chunk_edges)
      : chunk_edges_(std::max<uint64_t>(1, chunk_edges)),
        parts_(num_partitions),
        hits_(&obs::MetricsRegistry::Global().counter("edge_cache.hits")),
        served_bytes_counter_(
            &obs::MetricsRegistry::Global().counter("edge_cache.served_bytes")),
        pinned_gauge_(&obs::MetricsRegistry::Global().gauge("edge_cache.pinned_bytes")) {}

  /// A consumer wants partition p cached (refcounted). Capture happens on
  /// the next scan that streams p from the device.
  void Request(uint32_t p) {
    std::lock_guard<std::mutex> lk(mu_);
    ++parts_[p].refs;
  }

  /// Drops one reference; at zero the cached chunks are freed and the next
  /// Request must re-capture.
  void Release(uint32_t p) {
    std::lock_guard<std::mutex> lk(mu_);
    Part& part = parts_[p];
    if (part.refs > 0 && --part.refs == 0) {
      if (part.sealed.load(std::memory_order_relaxed)) {
        bytes_.fetch_sub(part.edges.size() * sizeof(Edge), std::memory_order_relaxed);
      }
      part.sealed.store(false, std::memory_order_release);
      part.edges = {};
    }
  }

  /// How ServeOrCapture delivered (or declined to deliver) a partition.
  enum class ServeResult {
    kMiss,      // not cached, not wanted: caller streams from the device
    kServed,    // delivered from RAM, no device I/O
    kCaptured,  // streamed from the device once, now cached for next time
  };

  /// The chunk consumer a capture-time stream feeds (type-erased: the
  /// capture path runs once per partition lifetime, so the indirection per
  /// chunk is noise).
  using ChunkConsumer = std::function<void(const Edge*, uint64_t)>;

  /// The one serve/capture protocol: serves p from RAM when a sealed
  /// capture exists; otherwise, when some consumer requested p, invokes
  /// `stream(consumer)` — the caller's device scan — capturing each chunk
  /// as it passes through and sealing at the end; otherwise kMiss and the
  /// caller streams normally. `*bytes_served` receives the RAM-served
  /// bytes (kServed only), for avoided-read accounting.
  template <typename F>
  ServeResult ServeOrCapture(uint32_t p, F&& f,
                             const std::function<void(const ChunkConsumer&)>& stream,
                             uint64_t* bytes_served = nullptr) {
    if (TryServe(p, f, bytes_served)) {
      return ServeResult::kServed;
    }
    if (!WantsCapture(p)) {
      return ServeResult::kMiss;
    }
    BeginCapture(p);
    stream([&](const Edge* es, uint64_t n) {
      CaptureChunk(p, es, n);
      f(es, n);
    });
    Seal(p);
    return ServeResult::kCaptured;
  }

  /// Serves partition p's chunks from RAM if a complete capture exists.
  /// Returns false (touching nothing) otherwise. `*bytes_served` (optional)
  /// receives the bytes delivered, so callers can account avoided reads.
  template <typename F>
  bool TryServe(uint32_t p, F&& f, uint64_t* bytes_served = nullptr) {
    Part& part = parts_[p];
    if (!part.sealed.load(std::memory_order_acquire)) {
      return false;
    }
    const std::vector<Edge>& edges = part.edges;
    for (uint64_t i = 0; i < edges.size(); i += chunk_edges_) {
      f(edges.data() + i, std::min<uint64_t>(chunk_edges_, edges.size() - i));
    }
    uint64_t bytes = edges.size() * sizeof(Edge);
    served_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    hits_->Add();
    served_bytes_counter_->Add(bytes);
    if (bytes_served != nullptr) {
      *bytes_served = bytes;
    }
    return true;
  }

  /// True if some consumer requested p and no complete capture exists yet —
  /// the scan streaming p from the device should capture as it goes.
  bool WantsCapture(uint32_t p) const {
    std::lock_guard<std::mutex> lk(mu_);
    return parts_[p].refs > 0 && !parts_[p].sealed.load(std::memory_order_relaxed);
  }

  /// Starts (or restarts, discarding a partial capture an aborted scan left
  /// behind) capturing partition p.
  void BeginCapture(uint32_t p) {
    std::lock_guard<std::mutex> lk(mu_);
    parts_[p].edges.clear();
  }

  void CaptureChunk(uint32_t p, const Edge* es, uint64_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    parts_[p].edges.insert(parts_[p].edges.end(), es, es + n);
  }

  /// Marks p's capture complete; later TryServe calls hit RAM.
  void Seal(uint32_t p) {
    std::lock_guard<std::mutex> lk(mu_);
    bytes_.fetch_add(parts_[p].edges.size() * sizeof(Edge), std::memory_order_relaxed);
    parts_[p].sealed.store(true, std::memory_order_release);
    pinned_gauge_->Set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  }

  /// Bytes currently held by sealed captures (the pinned_edge_bytes gauge).
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  /// Cumulative edge bytes served from RAM instead of the edge device.
  uint64_t served_bytes() const { return served_bytes_.load(std::memory_order_relaxed); }

 private:
  struct Part {
    std::vector<Edge> edges;
    std::atomic<bool> sealed{false};
    uint32_t refs = 0;
  };

  uint64_t chunk_edges_;
  mutable std::mutex mu_;
  std::deque<Part> parts_;  // deque: Part holds an atomic, so no moves
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> served_bytes_{0};
  // Registry handles, wired once at construction (obs/metrics.h).
  obs::Counter* hits_;
  obs::Counter* served_bytes_counter_;
  obs::Gauge* pinned_gauge_;
};

// Partitioned in-RAM edges shared by several MemoryStreamStores (the
// scheduler's memory-engine scan sharing): the setup shuffle runs once and
// every job's store references the same chunk array instead of copying it.
struct SharedEdgeChunks {
  StreamBuffer buffer;         // the buffer the shuffled edges ended up in
  ShuffleOutput<Edge> chunks;  // per-slice, per-partition index into it
  uint64_t num_edges = 0;
};

inline std::shared_ptr<const SharedEdgeChunks> MakeSharedEdgeChunks(
    ThreadPool& pool, const PartitionLayout& layout, uint32_t shuffle_fanout,
    const EdgeList& edges) {
  auto shared = std::make_shared<SharedEdgeChunks>();
  shared->num_edges = edges.size();
  size_t capacity = std::max<size_t>(1, edges.size()) * sizeof(Edge);
  shared->buffer = StreamBuffer(capacity);
  StreamBuffer scratch(capacity);
  if (!edges.empty()) {
    std::memcpy(shared->buffer.data(), edges.data(), edges.size() * sizeof(Edge));
  }
  obs::TraceSpan span("setup", "setup");
  shared->chunks = ShuffleRecords(pool, shared->buffer.records<Edge>(),
                                  scratch.records<Edge>(), edges.size(),
                                  layout.num_partitions(), shuffle_fanout,
                                  [&layout](const Edge& e) { return layout.PartitionOf(e.src); });
  if (shared->chunks.data == scratch.records<Edge>()) {
    // The shuffle may land in either buffer; keep the resting one. The move
    // transfers the allocation, so chunks.data stays valid.
    shared->buffer = std::move(scratch);
  }
  return shared;
}

// ---------------------------------------------------------------------------
// MemoryStreamStore: chunked in-RAM edge/update streams (paper §4).
//
// Exactly three stream buffers, each big enough for the edge list or the
// worst-case update list (one update per edge): one holds the partitioned
// edges, one collects generated updates, one is shuffle scratch.
template <EdgeCentricAlgorithm Algo>
class MemoryStreamStore {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  // Partitions are cache-sized and many: scatter/gather parallelize across
  // partitions with work stealing (§4.1).
  static constexpr bool kPartitionParallel = true;

  // Loads the unordered edges into buffer 0 and shuffles them into
  // per-partition chunks; this replaces the sort+index pre-processing of
  // traditional engines and is charged to setup time by the engine facade.
  MemoryStreamStore(ThreadPool& pool, PartitionLayout layout, uint32_t shuffle_fanout,
                    const EdgeList& edges)
      : pool_(pool), layout_(std::move(layout)) {
    size_t record = std::max(sizeof(Edge), sizeof(Update));
    size_t capacity = std::max<size_t>(1, edges.size()) * record;
    for (auto& buf : buffers_) {
      buf = StreamBuffer(capacity);
    }
    if (!edges.empty()) {
      std::memcpy(buffers_[0].data(), edges.data(), edges.size() * sizeof(Edge));
    }
    obs::TraceSpan span("setup", "setup");
    edge_chunks_ = ShuffleRecords(pool_, buffers_[0].template records<Edge>(),
                                  buffers_[1].template records<Edge>(), edges.size(),
                                  layout_.num_partitions(), shuffle_fanout,
                                  [this](const Edge& e) { return layout_.PartitionOf(e.src); });
    // Whichever buffer the edges landed in becomes the stable edge buffer;
    // the other two serve as the update and shuffle buffers.
    if (edge_chunks_.data == buffers_[0].template records<Edge>()) {
      update_buf_ = &buffers_[1];
    } else {
      update_buf_ = &buffers_[0];
    }
    scratch_buf_ = &buffers_[2];
    states_.resize(layout_.num_vertices());
  }

  // Shared-edges mode (multi-job scheduler): the partitioned edges live in a
  // SharedEdgeChunks owned by the scan source; this store allocates only its
  // own update and shuffle-scratch buffers (sized for one update per edge)
  // and its own vertex states.
  MemoryStreamStore(ThreadPool& pool, PartitionLayout layout,
                    std::shared_ptr<const SharedEdgeChunks> shared_edges)
      : pool_(pool), layout_(std::move(layout)), shared_edges_(std::move(shared_edges)) {
    XS_CHECK(shared_edges_ != nullptr);
    edge_chunks_ = shared_edges_->chunks;
    size_t capacity = std::max<uint64_t>(1, shared_edges_->num_edges) * sizeof(Update);
    buffers_[0] = StreamBuffer(capacity);
    buffers_[1] = StreamBuffer(capacity);
    update_buf_ = &buffers_[0];
    scratch_buf_ = &buffers_[1];
    states_.resize(layout_.num_vertices());
  }

  // Approximate RAM held for this store's lifetime (admission pricing for
  // the multi-job scheduler). Shared edge chunks are charged to their owner,
  // not to each attached store.
  uint64_t ResidentFootprintBytes() const {
    uint64_t total = layout_.num_vertices() * sizeof(VertexState);
    for (const auto& buf : buffers_) {
      total += buf.capacity_bytes();
    }
    return total;
  }

  ThreadPool& pool() { return pool_; }
  const PartitionLayout& layout() const { return layout_; }

  // Vertex residency: everything lives in one array in the layout's dense
  // order, so each partition's states stay contiguous.
  bool all_resident() const { return true; }
  VertexState* resident_states() { return states_.data(); }
  const VertexState* resident_states() const { return states_.data(); }
  std::vector<VertexState>& states() { return states_; }
  const std::vector<VertexState>& states() const { return states_; }
  // Partition-residency interface, never reached when all_resident().
  VertexState* partition_states() { return nullptr; }
  void LoadPartition(uint32_t) { XS_CHECK(false) << "memory store is fully resident"; }
  void StorePartition(uint32_t) { XS_CHECK(false) << "memory store is fully resident"; }

  void BindStats(RunStats*) {}
  void BeginIteration() {}

  // Scatter inputs: the setup shuffle's per-slice, per-partition chunks.
  const ShuffleOutput<Edge>& edge_chunks() const { return edge_chunks_; }

  // Scatter output: the shared append target, sized for one update per edge.
  std::span<std::byte> update_append_span() { return update_buf_->span(); }
  Update* update_records() { return update_buf_->template records<Update>(); }
  Update* scratch_records() { return scratch_buf_->template records<Update>(); }

  // Keeps buffer roles consistent after the driver's update shuffle: the
  // buffer the updates ended in is consumed by gather, then becomes scratch;
  // the other is the next append target.
  void CommitUpdateShuffle(const ShuffleOutput<Update>& shuffled) {
    if (shuffled.data == scratch_buf_->template records<Update>()) {
      std::swap(update_buf_, scratch_buf_);
    }
  }

 private:
  ThreadPool& pool_;
  PartitionLayout layout_;
  // Owns the edge buffer in solo mode (buffers_[0..2]); in shared-edges mode
  // only buffers_[0..1] are allocated and the edges live in shared_edges_.
  StreamBuffer buffers_[3];
  StreamBuffer* update_buf_ = nullptr;
  StreamBuffer* scratch_buf_ = nullptr;
  std::shared_ptr<const SharedEdgeChunks> shared_edges_;
  ShuffleOutput<Edge> edge_chunks_;
  std::vector<VertexState> states_;
};

// ---------------------------------------------------------------------------
// DeviceStreamStore: per-partition edge/update/vertex files on storage
// devices (paper §3), with the folded shuffle-spill path.

struct DeviceStoreOptions {
  uint64_t memory_budget_bytes = 64ull << 20;
  size_t io_unit_bytes = 1 << 20;
  bool allow_vertex_memory_opt = true;
  bool allow_update_memory_opt = true;
  bool eager_update_truncate = true;
  bool absorb_local_updates = true;
  // Double-buffered asynchronous spill writes (§3.3). Off = each spill
  // waits for its own update-file write (the fig28 sync baseline).
  bool async_spill = true;
  // Spill write-pipeline depth: how many shuffle/write buffers the spill
  // path rotates through. 2 = the paper's double buffering; RAID update
  // devices that absorb several streams can take more writes in flight.
  // Clamped to >= 2 (the gather scratch logic needs two non-fill buffers).
  int spill_queue_depth = 2;
  // Tally incoming/local edges per partition during the setup and ingest
  // shuffles (one extra PartitionOf per edge). Only the hybrid store's
  // residency planner consumes the tallies, so it alone turns this on.
  bool collect_dst_tallies = false;
  std::string file_prefix = "xs";
  // Shared-scan attach mode (src/scheduler/): open the existing per-
  // partition edge files named "<edge_file_prefix>.edges.N" instead of
  // creating them and partitioning `input_edge_file` (ignored, may be
  // empty). Update and vertex files are still created under file_prefix.
  // IngestEdges is disabled — the scan source owns the edge streams.
  bool attach_edge_files = false;
  std::string edge_file_prefix;  // empty = file_prefix
  // Setup-pass tallies supplied by the owner of the shared edge files
  // (attach mode never runs its own tally pass). Not owned; read once at
  // construction.
  const std::vector<uint64_t>* shared_dst_tallies = nullptr;
  const std::vector<uint64_t>* shared_local_tallies = nullptr;
  // Delta+varint compression of the spilled update streams (StreamCodec,
  // --compress-updates): spills encode on the I/O thread, gathers decode
  // frame by frame. Results are bit-identical either way; only the
  // update-file bytes change. Off by default — it trades codec CPU for
  // update-device bandwidth, a win exactly when the update device is the
  // bottleneck.
  bool compress_updates = false;
  // Per-thread staging bytes for the single-stage shuffles (--stage-bytes):
  // routes the spill/setup shuffles through StagedSingleStageShuffle when
  // > 0 (~L2 is the intended size; see DefaultShuffleStageBytes). 0 keeps
  // the legacy fused counting shuffle. Output is identical either way.
  size_t stage_bytes = 0;
};

template <EdgeCentricAlgorithm Algo>
class DeviceStreamStore {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using Options = DeviceStoreOptions;
  // Partitions stream sequentially (one loaded at a time); parallelism is
  // inside each loaded chunk (§4.3 layering).
  static constexpr bool kPartitionParallel = false;

  // Devices may all be the same object (single disk), split between edges
  // and updates (the Fig 15 "independent disks" configuration), or RAID-0
  // wrappers. `input_edge_file` must exist on `edge_dev`.
  DeviceStreamStore(ThreadPool& pool, PartitionLayout layout, const Options& opts,
                    StorageDevice& edge_dev, StorageDevice& update_dev,
                    StorageDevice& vertex_dev, const std::string& input_edge_file)
      : pool_(pool),
        layout_(std::move(layout)),
        opts_(opts),
        edge_dev_(edge_dev),
        update_dev_(update_dev),
        vertex_dev_(vertex_dev),
        codec_(&layout_, std::max<uint64_t>(1, opts.io_unit_bytes / sizeof(Update))) {
    uint32_t k = layout_.num_partitions();
    uint64_t vertex_bytes = layout_.num_vertices() * sizeof(VertexState);

    // §3.2 optimization 1: memory-resident vertex array when it fits in half
    // the budget (the other half belongs to the stream buffers).
    vertices_in_memory_ =
        opts_.allow_vertex_memory_opt && vertex_bytes <= opts_.memory_budget_bytes / 2;

    // Stream buffer capacity: S bytes per partition chunk (§3.4), with a
    // floor of twice the worst-case updates of one loaded edge chunk so a
    // single chunk's scatter output always fits.
    size_t record = std::max(sizeof(Edge), sizeof(Update));
    uint64_t chunk_edges = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Edge));
    uint64_t floor_bytes = 2 * chunk_edges * sizeof(Update);
    buffer_bytes_ =
        std::max<uint64_t>(static_cast<uint64_t>(opts_.io_unit_bytes) * k, floor_bytes);
    buffer_bytes_ = std::max<uint64_t>(buffer_bytes_, record * 1024);
    fill_ = StreamBuffer(buffer_bytes_);
    int spill_slots = std::max(2, opts_.spill_queue_depth);
    alt_.reserve(static_cast<size_t>(spill_slots));
    for (int i = 0; i < spill_slots; ++i) {
      alt_.emplace_back(buffer_bytes_);
    }
    pending_write_.resize(static_cast<size_t>(spill_slots));

    // Create (or, in attach mode, open the scan source's) per-partition
    // files.
    edge_files_.resize(k);
    update_files_.resize(k);
    vertex_files_.resize(k);
    edge_counts_.assign(k, 0);
    dst_edge_counts_.assign(k, 0);
    local_edge_counts_.assign(k, 0);
    for (uint32_t p = 0; p < k; ++p) {
      edge_files_[p] = opts_.attach_edge_files ? edge_dev_.Open(EdgeFileName(p))
                                               : edge_dev_.Create(EdgeFileName(p));
      update_files_[p] = update_dev_.Create(PartFile("updates", p));
      if (!vertices_in_memory_) {
        vertex_files_[p] = vertex_dev_.Create(PartFile("vertices", p));
      }
    }
    if (vertices_in_memory_) {
      // Indexed in the layout's dense order (== original ids in range mode)
      // so each partition's states stay contiguous.
      mem_states_.resize(layout_.num_vertices());
    } else {
      part_states_.resize(layout_.MaxPartitionSize());
      if (opts_.absorb_local_updates) {
        shadow_states_.resize(layout_.MaxPartitionSize());
      }
      // Materialize zero-initialized vertex files so the first VertexMap /
      // scatter can load them before any algorithm Init ran.
      std::fill(part_states_.begin(), part_states_.end(), VertexState{});
      for (uint32_t p = 0; p < k; ++p) {
        if (layout_.Size(p) > 0) {
          StorePartitionFrom(p, part_states_.data());
        }
      }
    }

    // Device baselines: sim_io_seconds reports busy time accrued from here
    // on, which includes the input-partitioning pass below (X-Stream
    // charges its own pre-processing to the run).
    CaptureDeviceBaselines();
    if (opts_.attach_edge_files) {
      // The scan source already partitioned the input; recover the edge
      // counts from the file sizes and the planner tallies from the source.
      for (uint32_t p = 0; p < k; ++p) {
        edge_counts_[p] = edge_dev_.FileSize(edge_files_[p]) / sizeof(Edge);
      }
      if (opts_.shared_dst_tallies != nullptr) {
        dst_edge_counts_ = *opts_.shared_dst_tallies;
      }
      if (opts_.shared_local_tallies != nullptr) {
        local_edge_counts_ = *opts_.shared_local_tallies;
      }
    } else {
      PartitionInputEdges(input_edge_file);
    }
  }

  // Subclasses customize spill routing through the virtual hooks below.
  virtual ~DeviceStreamStore() { WaitAllWritesQuietly(); }

  ThreadPool& pool() { return pool_; }
  const PartitionLayout& layout() const { return layout_; }
  uint64_t buffer_bytes() const { return buffer_bytes_; }
  bool vertices_in_memory() const { return vertices_in_memory_; }

  bool all_resident() const { return vertices_in_memory_; }
  VertexState* resident_states() { return mem_states_.data(); }
  VertexState* partition_states() { return part_states_.data(); }

  void LoadPartition(uint32_t p) {
    uint64_t n = layout_.Size(p);
    vertex_dev_.Read(vertex_files_[p], 0,
                     std::span<std::byte>(reinterpret_cast<std::byte*>(part_states_.data()),
                                          n * sizeof(VertexState)));
  }

  void StorePartition(uint32_t p) { StorePartitionFrom(p, part_states_.data()); }

  void BindStats(RunStats* stats) { stats_ = stats; }

  // Optional (driver probes with a requires-clause): the accountant the
  // store's internal waits — spill-write stalls, edge-scan and gather read
  // stalls, in-spill shuffles — are attributed to (obs/attribution.h).
  void BindAccountant(obs::PhaseAccountant* acct) { acct_ = acct; }

  void BeginIteration() {
    spilled_ = false;
    spilled_updates_ = 0;
    absorbed_updates_ = 0;
    drained_updates_ = 0;
    absorbed_changed_ = 0;
    drain_watermark_ = 0;
  }

  // Per-partition edge tallies from the setup/ingest shuffle passes, by
  // source (edge file sizes), by destination (worst-case incoming updates)
  // and edges whose endpoints share a partition (absorbable locally). The
  // hybrid store's residency planner prices pin candidates with these.
  const std::vector<uint64_t>& src_edge_counts() const { return edge_counts_; }
  const std::vector<uint64_t>& dst_edge_counts() const { return dst_edge_counts_; }
  const std::vector<uint64_t>& local_edge_counts() const { return local_edge_counts_; }

  // Names of the per-partition edge files, for partitioned semi-streaming
  // runs (RunSemiStreamingPartitioned) over this store.
  std::vector<std::string> EdgeFileNames() const {
    std::vector<std::string> names;
    names.reserve(layout_.num_partitions());
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      names.push_back(EdgeFileName(p));
    }
    return names;
  }

  // ---- Scatter side -------------------------------------------------------

  // The shared append target for scatter output. Unlike the §3.3 sketch the
  // fill buffer is stable: spills consume it synchronously (the shuffle runs
  // on the compute threads), so only the shuffle *destinations* alternate.
  std::span<std::byte> fill_span() { return fill_.span(); }

  // Loads partition s's states and arms local-update absorption: spills
  // gather s-destined updates into a shadow next-state while scatter keeps
  // reading the pre-iteration states.
  void BeginPartitionScatter(uint32_t s) {
    attr_partition_ = s;  // cell owner for this partition's spills and waits
    if (vertices_in_memory_) {
      return;
    }
    LoadPartition(s);
    if (opts_.absorb_local_updates) {
      std::memcpy(shadow_states_.data(), part_states_.data(),
                  layout_.Size(s) * sizeof(VertexState));
      shadow_dirty_ = false;
      absorb_partition_ = s;
    }
  }

  // Streams partition s's edge file in I/O-unit chunks (prefetch distance 1
  // via StreamReader double-buffering).
  template <typename F>
  void ForEachEdgeChunk(uint32_t s, F&& f) {
    uint64_t chunk_edges = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Edge));
    StreamReader reader(edge_dev_, edge_files_[s], chunk_edges * sizeof(Edge));
    for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
      f(reinterpret_cast<const Edge*>(chunk.data()), chunk.size() / sizeof(Edge));
    }
    if (acct_ != nullptr) {
      acct_->Record(obs::Phase::kScanIo, s, reader.wait_seconds());
    }
  }

  // In-memory shuffle of the filled output buffer + asynchronous appends of
  // the per-partition chunks to the update files (the folded shuffle phase,
  // Fig 6). Destination buffers rotate through spill_queue_depth slots so
  // the shuffle of this batch overlaps the writes of the previous ones; the
  // only wait is for the write `depth` batches back, which still owns the
  // destination about to be reused.
  //
  // When a scatter partition is active (absorb_partition_), its own chunks
  // are gathered straight into its shadow next-state here — synchronously,
  // before the async write is submitted, so the writer thread and this
  // thread only ever read the shuffled buffer — and never reach its update
  // file. Partially resident subclasses route further partitions to RAM via
  // the KeepUpdatesResident / AppendResidentUpdates hooks; the write lambda
  // works off a routing snapshot, so a later re-plan can never race it.
  // The caller must Reset() the appender afterwards.
  void SpillUpdates(Algo& algo, ConcurrentAppender& appender) {
    appender.FlushAll();
    uint64_t n = appender.records();
    if (n == 0) {
      return;
    }
    obs::TraceSpan spill_span("spill");
    int slot = write_slot_;
    WaitWriteSlot(slot);
    spilled_ = true;
    spilled_updates_ += n;
    drain_watermark_ = 0;  // the fill buffer is fresh after this returns

    Update* src = fill_.template records<Update>();
    Update* dst = alt_[static_cast<size_t>(slot)].template records<Update>();
    ShuffleOutput<Update> shuffled;
    obs::TraceSpan shuffle_span("shuffle");
    obs::PhaseTimer shuffle_pt(acct_, obs::Phase::kShuffle, attr_partition_);
    if (layout_.num_partitions() == 1) {
      // ShuffleRecords would leave a single partition's records in place in
      // the fill buffer, which scatter immediately overwrites; stage them
      // into the destination buffer so the async write owns private memory.
      std::memcpy(dst, src, n * sizeof(Update));
      shuffled.data = dst;
      shuffled.num_partitions = 1;
      shuffled.slices = {{ChunkRef{0, n}}};
    } else {
      shuffled = ShuffleRecords(pool_, src, dst, n, layout_.num_partitions(),
                                layout_.num_partitions(),
                                [this](const Update& u) { return layout_.PartitionOf(u.dst); },
                                opts_.stage_bytes);
      XS_CHECK(shuffled.data == dst);  // single-stage shuffle, K > 1
    }
    shuffle_span.Close();
    shuffle_pt.Stop();

    const uint32_t absorb = absorb_partition_;
    if (absorb != kNoAbsorbPartition) {
      VertexId part_base = layout_.Begin(absorb);
      uint64_t absorbed = 0;
      for (const auto& slice : shuffled.slices) {
        const ChunkRef& c = slice[absorb];
        const Update* rec = shuffled.data + c.begin;
        for (uint64_t i = 0; i < c.count; ++i) {
          if (algo.Gather(shadow_states_[layout_.DenseId(rec[i].dst) - part_base], rec[i])) {
            ++absorbed_changed_;
          }
        }
        absorbed += c.count;
      }
      if (absorbed > 0) {
        shadow_dirty_ = true;
        absorbed_updates_ += absorbed;
      }
    }

    // Route every destination partition: the scatter partition's chunks were
    // gathered into the shadow above, resident partitions' chunks go to
    // their RAM buffers (subclass hook), the rest to the update files.
    uint64_t submitted_bytes = 0;
    uint64_t kept_bytes = 0;
    std::vector<uint8_t> to_file(layout_.num_partitions(), 0);
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t routed = 0;
      for (const auto& slice : shuffled.slices) {
        routed += slice[p].count;
      }
      ObserveRoutedUpdates(p, routed);
      if (p == absorb) {
        continue;
      }
      if (KeepUpdatesResident(p)) {
        for (const auto& slice : shuffled.slices) {
          const ChunkRef& c = slice[p];
          if (c.count > 0) {
            AppendResidentUpdates(p, shuffled.data + c.begin, c.count);
          }
        }
        kept_bytes += routed * sizeof(Update);
      } else {
        to_file[p] = 1;
        submitted_bytes += routed * sizeof(Update);
      }
    }
    stats_->update_file_bytes += submitted_bytes;
    if (kept_bytes > 0) {
      // A kept byte skips both the update-file append and the gather
      // read-back.
      stats_->avoided_spill_bytes += 2 * kept_bytes;
    }

    const Update* data = shuffled.data;
    auto slices =
        std::make_shared<std::vector<std::vector<ChunkRef>>>(std::move(shuffled.slices));
    // The write lambda owns the shuffled buffer until WaitWriteSlot, so the
    // compressed path encodes there too — on the I/O thread, overlapped with
    // the next batch's scatter/shuffle exactly like the raw appends.
    pending_write_[static_cast<size_t>(slot)] = update_dev_.executor().Submit(
        [this, data, slices, routing = std::move(to_file)] {
          std::vector<std::byte> enc;  // reused across partitions when compressing
          for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
            if (!routing[p]) {
              continue;  // gathered into the shadow / kept resident above
            }
            if (opts_.compress_updates) {
              enc.clear();
              uint64_t recs = 0;
              WallTimer codec_timer;
              for (const auto& slice : *slices) {
                const ChunkRef& c = slice[p];
                if (c.count > 0) {
                  codec_.EncodeChunk(p, data + c.begin, c.count, enc);
                  recs += c.count;
                }
              }
              double codec_seconds = codec_timer.Seconds();
              if (recs > 0) {
                update_dev_.Append(update_files_[p],
                                   std::span<const std::byte>(enc.data(), enc.size()));
                auto& reg = obs::MetricsRegistry::Global();
                reg.counter("store.codec.raw_bytes").Add(recs * sizeof(Update));
                reg.counter("store.codec.encoded_bytes").Add(enc.size());
                reg.histogram("store.codec.encode_ns_per_update")
                    .Observe(codec_seconds * 1e9 / static_cast<double>(recs));
              }
              continue;
            }
            for (const auto& slice : *slices) {
              const ChunkRef& c = slice[p];
              if (c.count > 0) {
                update_dev_.Append(update_files_[p],
                                   std::span<const std::byte>(
                                       reinterpret_cast<const std::byte*>(data + c.begin),
                                       c.count * sizeof(Update)));
              }
            }
          }
        });
    write_slot_ = (write_slot_ + 1) % static_cast<int>(alt_.size());
    if (opts_.async_spill) {
      stats_->async_spill_bytes += submitted_bytes;
    } else {
      WaitWriteSlot(slot);
    }
  }

  // Drain: s-destined updates still sitting in the append buffer are
  // gathered now, while s's shadow is live — one compaction scan, no
  // shuffle. Spill-time absorption alone misses them whenever a partition's
  // scatter output fits the buffer (the common case for high-locality
  // mappings, whose updates are mostly s->s). Only records appended since
  // the last drain are scanned (survivors of an earlier drain targeted a
  // partition != its s; rescanning them at every later partition would cost
  // O(k x buffer) per iteration) — absorption is opportunistic, so skipping
  // them is merely fewer absorbed updates, never a correctness issue.
  void EndPartitionScatter(Algo& algo, ConcurrentAppender& appender) {
    if (absorb_partition_ == kNoAbsorbPartition) {
      return;
    }
    uint32_t s = absorb_partition_;
    appender.FlushAll();
    uint64_t buffered = appender.records();
    Update* buf = fill_.template records<Update>();
    VertexId drain_base = layout_.Begin(s);
    uint64_t kept = drain_watermark_;
    for (uint64_t i = drain_watermark_; i < buffered; ++i) {
      if (layout_.PartitionOf(buf[i].dst) == s) {
        if (algo.Gather(shadow_states_[layout_.DenseId(buf[i].dst) - drain_base], buf[i])) {
          ++absorbed_changed_;
        }
      } else {
        buf[kept++] = buf[i];
      }
    }
    if (kept < buffered) {
      appender.Rewind(kept * sizeof(Update));
      drained_updates_ += buffered - kept;
      shadow_dirty_ = true;
    }
    drain_watermark_ = kept;
    // Absorbed updates became part of s's next state: persist them so the
    // gather phase reloads them along with the vertex file.
    if (shadow_dirty_) {
      StorePartitionFrom(s, shadow_states_.data());
    }
    absorb_partition_ = kNoAbsorbPartition;
  }

  // ---- Scatter -> gather transition ---------------------------------------

  // How the gather phase will consume the updates this iteration.
  struct GatherPlan {
    // §3.2 optimization 2: nothing was spilled, the whole update set stays
    // in memory and never touches storage.
    bool memory_gather = false;
    uint64_t tail_records = 0;
    ShuffleOutput<Update> resident;  // when memory_gather && tail_records > 0
    // Scratch for the gather sub-shuffle, chosen to never alias the
    // resident updates (or, in the file path, the reader's buffers).
    Update* tmp_a = nullptr;
    Update* tmp_b = nullptr;
  };

  // End of scatter: either keep the whole update set in memory or spill the
  // tail like any other buffer, then drain every outstanding write (errors
  // raised on the I/O thread propagate from here).
  GatherPlan FinishScatter(Algo& algo, ConcurrentAppender& appender) {
    GatherPlan plan;
    appender.FlushAll();
    plan.tail_records = appender.records();
    plan.memory_gather = !spilled_ && opts_.allow_update_memory_opt;
    if (plan.memory_gather) {
      if (plan.tail_records > 0) {
        plan.resident = ShuffleRecords(
            pool_, fill_.template records<Update>(), alt_[0].template records<Update>(),
            plan.tail_records, layout_.num_partitions(), layout_.num_partitions(),
            [this](const Update& u) { return layout_.PartitionOf(u.dst); }, opts_.stage_bytes);
        // Memory-gathered tails still count as routed volume for partially
        // resident subclasses' re-plan feedback (no-op in the base store).
        for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
          uint64_t routed = 0;
          for (const auto& slice : plan.resident.slices) {
            routed += slice[p].count;
          }
          ObserveRoutedUpdates(p, routed);
        }
      }
    } else if (plan.tail_records > 0) {
      SpillUpdates(algo, appender);
    }
    WaitAllWrites();

    if (plan.memory_gather && plan.resident.data == alt_[0].template records<Update>()) {
      plan.tmp_a = fill_.template records<Update>();
      plan.tmp_b = alt_[1].template records<Update>();
    } else if (plan.memory_gather && plan.tail_records > 0) {
      // Single-partition shuffle left the records in place in the fill
      // buffer.
      plan.tmp_a = alt_[0].template records<Update>();
      plan.tmp_b = alt_[1].template records<Update>();
    } else {
      plan.tmp_a = fill_.template records<Update>();
      plan.tmp_b = alt_[0].template records<Update>();
    }
    return plan;
  }

  // ---- Gather side --------------------------------------------------------

  void BeginPartitionGather(uint32_t p) {
    if (!vertices_in_memory_) {
      LoadPartition(p);
    }
  }

  // Streams partition p's update file in I/O-unit chunks. Time spent blocked
  // on reads the prefetch missed is charged to gather_wait_seconds — the
  // read-side half of the stall story spill_wait_seconds tells for writes.
  template <typename F>
  void ForEachUpdateChunk(uint32_t p, F&& f) {
    uint64_t chunk_updates = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Update));
    StreamReader reader(update_dev_, update_files_[p], chunk_updates * sizeof(Update));
    if (opts_.compress_updates) {
      // Compressed stream: the file holds self-delimiting codec frames (one
      // sink call per frame, each at most one I/O unit of records), which
      // the incremental decoder reassembles across read-chunk boundaries.
      typename StreamCodec<Update>::Decoder decoder(&codec_, p);
      uint64_t records = 0;
      double feed_seconds = 0;
      double sink_seconds = 0;
      for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
        WallTimer feed_timer;
        decoder.Feed(chunk, [&](const Update* u, uint64_t n) {
          WallTimer sink_timer;
          f(u, n);
          sink_seconds += sink_timer.Seconds();
          records += n;
        });
        feed_seconds += feed_timer.Seconds();
      }
      XS_CHECK(decoder.Finished())
          << "truncated compressed update stream for partition " << p;
      if (records > 0) {
        obs::MetricsRegistry::Global()
            .histogram("store.codec.decode_ns_per_update")
            .Observe(std::max(0.0, feed_seconds - sink_seconds) * 1e9 /
                     static_cast<double>(records));
      }
    } else {
      for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
        f(reinterpret_cast<const Update*>(chunk.data()), chunk.size() / sizeof(Update));
      }
    }
    stats_->gather_wait_seconds += reader.wait_seconds();
    obs::MetricsRegistry::Global()
        .histogram("store.gather_wait_us")
        .Observe(reader.wait_seconds() * 1e6);
    if (acct_ != nullptr) {
      // The driver's gather wall already covers this span; only flag the
      // wait slice so the diagnosis can call it I/O, not compute.
      acct_->RecordGatherReadWait(reader.wait_seconds());
    }
  }

  void EndPartitionGather(uint32_t p, bool memory_gather) {
    if (!vertices_in_memory_) {
      StorePartition(p);
    }
    // The update stream is consumed: destroy it (truncation = TRIM, §3.3).
    if (!memory_gather && opts_.eager_update_truncate) {
      update_dev_.Truncate(update_files_[p], 0);
    }
    SampleUpdateOccupancy();
  }

  void FinishGather(bool memory_gather) {
    if (!memory_gather && !opts_.eager_update_truncate) {
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        update_dev_.Truncate(update_files_[p], 0);
      }
    }
  }

  // Per-iteration accounting consumed by the driver's stats folding.
  uint64_t spilled_updates() const { return spilled_updates_; }
  uint64_t drained_updates() const { return drained_updates_; }
  uint64_t absorbed_updates() const { return absorbed_updates_; }
  uint64_t absorbed_changed() const { return absorbed_changed_; }

  // Cancelled mid-scatter (multi-job scheduler cancellation / teardown):
  // drop the absorption shadow, drain outstanding spill writes, and discard
  // anything already spilled so nothing references the store's buffers and
  // teardown is safe. Runs on destructor paths (a dropped job), so write
  // errors are logged, never thrown — the job's results are being discarded
  // anyway. This does NOT rewind vertex state: partitions whose scatter
  // already completed this iteration may have persisted absorbed updates,
  // so an aborted store's results are mid-iteration — discard the store
  // (as the scheduler does) rather than resuming computation on it.
  void AbortScatter() {
    absorb_partition_ = kNoAbsorbPartition;
    WaitAllWritesQuietly();
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      update_dev_.Truncate(update_files_[p], 0);
    }
    spilled_ = false;
    spilled_updates_ = 0;
    absorbed_updates_ = 0;
    drained_updates_ = 0;
    absorbed_changed_ = 0;
    drain_watermark_ = 0;
  }

  // Approximate RAM held for this store's lifetime: stream buffers plus
  // whichever vertex arrays the residency mode keeps (admission pricing for
  // the multi-job scheduler; a hybrid subclass's pin set is priced by its
  // pin budget, not here).
  uint64_t ResidentFootprintBytes() const {
    uint64_t total = fill_.capacity_bytes();
    for (const auto& buf : alt_) {
      total += buf.capacity_bytes();
    }
    total += mem_states_.size() * sizeof(VertexState);
    total += (part_states_.size() + shadow_states_.size()) * sizeof(VertexState);
    return total;
  }

  // ---- Ingest / setup -----------------------------------------------------

  // Appends more raw edges to the partitioned store (the Fig 17 ingest
  // path): each batch goes through the same in-memory shuffle and is
  // appended to the per-partition edge files.
  void IngestEdges(const EdgeList& batch) {
    XS_CHECK(!opts_.attach_edge_files)
        << "attached stores share their edge files with a scan source; ingest "
           "through the source instead";
    for (const Edge& e : batch) {
      XS_CHECK_LT(e.src, layout_.num_vertices());
      XS_CHECK_LT(e.dst, layout_.num_vertices());
    }
    uint64_t capacity_edges = buffer_bytes_ / sizeof(Edge);
    uint64_t done = 0;
    while (done < batch.size()) {
      uint64_t n = std::min<uint64_t>(capacity_edges, batch.size() - done);
      std::memcpy(fill_.data(), batch.data() + done, n * sizeof(Edge));
      ShuffleAndAppendEdges(n);
      done += n;
    }
  }

  // ---- Device statistics --------------------------------------------------

  void CaptureDeviceBaselines() {
    baselines_.clear();
    for (StorageDevice* dev : UniqueDevices()) {
      baselines_[dev] = dev->stats();
    }
  }

  void CollectDeviceStats(RunStats& stats) {
    stats.sim_io_seconds = 0;
    stats.bytes_read = 0;
    stats.bytes_written = 0;
    for (StorageDevice* dev : UniqueDevices()) {
      DeviceStats s = dev->stats();
      DeviceStats base;  // zero if the device was attached after baselining
      auto it = baselines_.find(dev);
      if (it != baselines_.end()) {
        base = it->second;
      }
      stats.sim_io_seconds = std::max(stats.sim_io_seconds, s.busy_seconds - base.busy_seconds);
      stats.bytes_read += s.bytes_read - base.bytes_read;
      stats.bytes_written += s.bytes_written - base.bytes_written;
    }
  }

 protected:
  // Protected rather than private: HybridStreamStore (core/hybrid_store.h)
  // extends this store with a planner-chosen resident partition set and
  // needs direct access to the buffer/file/spill machinery. The driver
  // dispatches statically through its Store template parameter, so most
  // subclass customizations shadow base methods; the spill path is the
  // exception — it routes through the three virtual hooks below so the
  // shuffle/absorb/append machinery exists exactly once.

  // True if partition p's incoming updates stay in RAM instead of going to
  // its update file.
  virtual bool KeepUpdatesResident(uint32_t /*p*/) const { return false; }
  // Appends a shuffled chunk destined to resident partition p. Runs on the
  // compute thread, before the async write is submitted.
  virtual void AppendResidentUpdates(uint32_t /*p*/, const Update* /*rec*/,
                                     uint64_t /*count*/) {}
  // Called once per destination partition per spill (and per memory-gather
  // tail) with the updates routed there — subclass re-plan feedback.
  virtual void ObserveRoutedUpdates(uint32_t /*p*/, uint64_t /*count*/) {}

  std::string PartFile(const char* kind, uint32_t p) const {
    return opts_.file_prefix + "." + kind + "." + std::to_string(p);
  }

  // Edge files may belong to a shared scan source (attach mode), in which
  // case they carry the source's prefix rather than this store's.
  std::string EdgeFileName(uint32_t p) const {
    const std::string& prefix =
        opts_.edge_file_prefix.empty() ? opts_.file_prefix : opts_.edge_file_prefix;
    return prefix + ".edges." + std::to_string(p);
  }

  // Track peak update-file occupancy for the TRIM ablation. Called at
  // every gather boundary (base and partially resident subclasses alike).
  void SampleUpdateOccupancy() {
    uint64_t occupancy = 0;
    for (uint32_t q = 0; q < layout_.num_partitions(); ++q) {
      occupancy += update_dev_.FileSize(update_files_[q]);
    }
    stats_->peak_update_bytes = std::max(stats_->peak_update_bytes, occupancy);
  }

  void StorePartitionFrom(uint32_t p, const VertexState* states) {
    uint64_t n = layout_.Size(p);
    vertex_dev_.Write(vertex_files_[p], 0,
                      std::span<const std::byte>(reinterpret_cast<const std::byte*>(states),
                                                 n * sizeof(VertexState)));
  }

  EdgeShuffleTallies SetupTallies() {
    EdgeShuffleTallies tallies;
    tallies.src = &edge_counts_;
    tallies.dst = &dst_edge_counts_;
    tallies.local = &local_edge_counts_;
    tallies.collect_dst = opts_.collect_dst_tallies;
    return tallies;
  }

  // Setup: stream the unordered input file, shuffle each loaded stretch by
  // source partition, append chunks to the per-partition edge files (§3.2).
  void PartitionInputEdges(const std::string& input_edge_file) {
    obs::TraceSpan span("setup", "setup");
    EdgeShuffleTallies tallies = SetupTallies();
    PartitionEdgeFileToParts(pool_, layout_, edge_dev_, input_edge_file, edge_dev_,
                             edge_files_, fill_.template records<Edge>(),
                             alt_[0].template records<Edge>(), buffer_bytes_,
                             opts_.io_unit_bytes, tallies, opts_.stage_bytes);
  }

  // Shuffles `count` edges sitting at the start of the fill buffer by source
  // partition and appends each partition's spans to its edge file. Only
  // called at setup/ingest time, when no spill writes are outstanding.
  void ShuffleAndAppendEdges(uint64_t count) {
    EdgeShuffleTallies tallies = SetupTallies();
    ShuffleAppendEdgeBlock(pool_, layout_, edge_dev_, edge_files_,
                           fill_.template records<Edge>(), alt_[0].template records<Edge>(),
                           count, tallies, opts_.stage_bytes);
  }

  // Waits for the spill write holding `slot`'s buffer; .get() rather than
  // .wait() so failures raised on the I/O thread propagate to the caller
  // instead of being dropped with the future.
  void WaitWriteSlot(int slot) {
    if (pending_write_[static_cast<size_t>(slot)].valid()) {
      WallTimer timer;
      pending_write_[static_cast<size_t>(slot)].get();
      double waited = timer.Seconds();
      stats_->spill_wait_seconds += waited;
      obs::MetricsRegistry::Global().histogram("store.spill_wait_us").Observe(waited * 1e6);
      if (acct_ != nullptr) {
        // Same timer value as spill_wait_seconds, so the attribution matrix
        // reconciles with RunStats exactly.
        acct_->Record(obs::Phase::kSpillWait, attr_partition_, waited);
      }
    }
  }

  void WaitAllWrites() {
    for (int slot = 0; slot < static_cast<int>(pending_write_.size()); ++slot) {
      WaitWriteSlot(slot);
    }
  }

  // Destructor-safe drain: the spill lambdas capture `this`, so a store
  // destroyed mid-scatter (a cancelled scheduler job) must wait for them;
  // errors are swallowed (destructors must not throw) — durable paths drain
  // through FinishScatter/AbortScatter, which propagate.
  void WaitAllWritesQuietly() {
    for (auto& pending : pending_write_) {
      if (pending.valid()) {
        try {
          pending.get();
        } catch (const std::exception& e) {
          XS_LOG(Error) << "dropped spill-write error during store teardown: " << e.what();
        }
      }
    }
  }

  std::vector<StorageDevice*> UniqueDevices() {
    std::set<StorageDevice*> unique{&edge_dev_, &update_dev_, &vertex_dev_};
    return {unique.begin(), unique.end()};
  }

  ThreadPool& pool_;
  PartitionLayout layout_;
  Options opts_;
  StorageDevice& edge_dev_;
  StorageDevice& update_dev_;
  StorageDevice& vertex_dev_;
  // Update-stream codec (opts_.compress_updates). Frames hold at most one
  // I/O unit of records, so the decoded gather callbacks stay chunk-sized.
  StreamCodec<Update> codec_;

  uint64_t buffer_bytes_ = 0;
  // Scatter output accumulates in fill_; spills shuffle it into rotating
  // alt_ buffers (spill_queue_depth of them, >= 2) whose contents the async
  // update-file write owns until the matching WaitWriteSlot. alt_[0] doubles
  // as shuffle scratch at setup / ingest / memory-gather time, when no
  // writes are outstanding.
  StreamBuffer fill_;
  std::vector<StreamBuffer> alt_;
  std::vector<std::future<void>> pending_write_;
  int write_slot_ = 0;

  bool vertices_in_memory_ = false;
  std::vector<VertexState> mem_states_;   // when vertices_in_memory_ (dense order)
  std::vector<VertexState> part_states_;  // one-partition scratch otherwise

  // Local-update absorption (opts_.absorb_local_updates, file-resident
  // vertices only): shadow next-state of the partition being scattered.
  static constexpr uint32_t kNoAbsorbPartition = UINT32_MAX;
  std::vector<VertexState> shadow_states_;
  uint32_t absorb_partition_ = kNoAbsorbPartition;
  bool shadow_dirty_ = false;

  std::vector<FileId> edge_files_;
  std::vector<FileId> update_files_;
  std::vector<FileId> vertex_files_;
  std::vector<uint64_t> edge_counts_;        // by source partition
  std::vector<uint64_t> dst_edge_counts_;    // by destination partition
  std::vector<uint64_t> local_edge_counts_;  // src and dst share the partition

  bool spilled_ = false;
  uint64_t spilled_updates_ = 0;   // this iteration, via spill shuffles
  uint64_t absorbed_updates_ = 0;  // this iteration, via spill-time chunks
  uint64_t drained_updates_ = 0;   // this iteration, via end-of-partition drain
  uint64_t absorbed_changed_ = 0;  // this iteration
  uint64_t drain_watermark_ = 0;   // records of fill_ already drain-scanned

  std::map<StorageDevice*, DeviceStats> baselines_;
  // Counter sink. The driver rebinds this to its own RunStats (BindStats);
  // until then counters land in the fallback so a store driven directly —
  // the stores are a first-class API — never dereferences null mid-spill.
  RunStats fallback_stats_;
  RunStats* stats_ = &fallback_stats_;
  // Attribution sink (BindAccountant; null = not attributed) and the
  // partition owning the current scatter's spills/waits.
  obs::PhaseAccountant* acct_ = nullptr;
  uint32_t attr_partition_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_STREAM_STORE_H_
