// W-Stream model support (paper §2.5).
//
// "...or graph algorithms that are built on top of the W-Stream model [14]."
//
// In the W-Stream model (Aggarwal, Datar, Rajagopalan & Ruhl; Demetrescu et
// al.) each pass reads an input stream and *writes an output stream* that
// becomes the next pass's input, with memory bounded well below the stream
// size. The engine below runs such algorithms over the storage substrate:
// pass i streams `stream.i` sequentially and appends records to
// `stream.(i+1)`; consumed streams are truncated (the TRIM discipline of
// §3.3).
//
// An algorithm provides a Record type plus:
//   * BeginPass(pass)
//   * Item(const Record&, Emitter&)  — may emit any number of records
//   * EndPass(pass, emitted) -> bool — true when done
#ifndef XSTREAM_CORE_WSTREAM_H_
#define XSTREAM_CORE_WSTREAM_H_

#include <algorithm>
#include <concepts>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "storage/device.h"
#include "storage/stream_io.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

// Append-side handle given to the algorithm.
template <typename Record>
class WStreamEmitter {
 public:
  explicit WStreamEmitter(StreamWriter& writer) : writer_(writer) {}

  void Emit(const Record& r) {
    writer_.AppendRecord(r);
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  StreamWriter& writer_;
  uint64_t count_ = 0;
};

template <typename A, typename Record>
concept WStreamAlgorithm = requires(A a, const Record& r, WStreamEmitter<Record>& out,
                                    uint32_t pass, uint64_t emitted) {
  requires std::is_trivially_copyable_v<Record>;
  { a.BeginPass(pass) } -> std::same_as<void>;
  { a.Item(r, out) } -> std::same_as<void>;
  { a.EndPass(pass, emitted) } -> std::convertible_to<bool>;
};

struct WStreamStats {
  uint32_t passes = 0;
  uint64_t records_read = 0;
  uint64_t records_written = 0;
  double seconds = 0.0;
};

// Runs the algorithm starting from the records in `input_file` on `dev`.
// Intermediate streams are named `<prefix>.pass.<i>` and truncated once
// consumed. The input file itself is preserved.
template <typename Record, typename A>
  requires WStreamAlgorithm<A, Record>
WStreamStats RunWStream(A& algo, StorageDevice& dev, const std::string& input_file,
                        const std::string& prefix = "wstream", uint32_t max_passes = 256,
                        size_t io_unit_bytes = 1 << 20) {
  WStreamStats stats;
  WallTimer timer;
  size_t chunk = std::max<size_t>(sizeof(Record),
                                  io_unit_bytes / sizeof(Record) * sizeof(Record));
  std::string current = input_file;
  for (uint32_t pass = 0; pass < max_passes; ++pass) {
    std::string next = prefix + ".pass." + std::to_string(pass);
    FileId in = dev.Open(current);
    FileId out = dev.Create(next);
    algo.BeginPass(pass);
    uint64_t emitted;
    {
      StreamReader reader(dev, in, chunk);
      StreamWriter writer(dev, out, chunk);
      WStreamEmitter<Record> emitter(writer);
      for (auto bytes = reader.Next(); !bytes.empty(); bytes = reader.Next()) {
        XS_CHECK_EQ(bytes.size() % sizeof(Record), 0u);
        const Record* records = reinterpret_cast<const Record*>(bytes.data());
        uint64_t n = bytes.size() / sizeof(Record);
        for (uint64_t i = 0; i < n; ++i) {
          algo.Item(records[i], emitter);
        }
        stats.records_read += n;
      }
      writer.Close();
      emitted = emitter.count();
      stats.records_written += emitted;
    }
    // The consumed intermediate stream is destroyed (truncate = TRIM).
    if (current != input_file) {
      dev.Truncate(in, 0);
      dev.Remove(current);
    }
    ++stats.passes;
    if (algo.EndPass(pass, emitted)) {
      dev.Remove(next);
      break;
    }
    current = next;
  }
  stats.seconds = timer.Seconds();
  return stats;
}

// ------------------------------------------------------------------------
// Classic W-Stream algorithm: connected components by repeated contraction
// (Demetrescu, Finocchi & Ribichini). Each pass builds an in-memory
// dictionary of at most `memory_budget` vertices, greedily unions the edges
// whose endpoints both sit in the dictionary, relabels the remaining edges
// through the dictionary, and emits them for the next pass. Passes shrink
// the stream until it is empty; total passes ~ O(V / memory_budget).
class WStreamConnectedComponents {
 public:
  WStreamConnectedComponents(uint64_t num_vertices, uint64_t memory_budget)
      : budget_(std::max<uint64_t>(2, memory_budget)), label_(num_vertices) {
    for (uint64_t v = 0; v < num_vertices; ++v) {
      label_[v] = static_cast<VertexId>(v);
    }
  }

  void BeginPass(uint32_t) { dict_parent_.clear(); }

  void Item(const Edge& e, WStreamEmitter<Edge>& out) {
    // Endpoints are *labels* (supervertices) from previous contractions.
    VertexId a = e.src;
    VertexId b = e.dst;
    if (a == b) {
      return;  // contracted away
    }
    bool have_a = TryAdmit(a);
    bool have_b = TryAdmit(b);
    if (have_a && have_b) {
      DictUnion(a, b);  // contract in memory; edge is consumed
      return;
    }
    // At least one endpoint is outside the dictionary: forward the edge,
    // relabelled through the current contraction where possible.
    out.Emit(Edge{have_a ? DictFind(a) : a, have_b ? DictFind(b) : b, e.weight});
  }

  bool EndPass(uint32_t, uint64_t emitted) {
    // Fold the pass's contractions into the global labels: every vertex
    // whose label sits in the dictionary follows it to the dictionary root.
    for (auto& l : label_) {
      auto it = dict_parent_.find(l);
      if (it != dict_parent_.end()) {
        l = DictFind(l);
      }
    }
    return emitted == 0;
  }

  // After completion: canonical min-id component labels.
  std::vector<VertexId> Labels() {
    // Labels may chain through several passes' supervertices; compress.
    // (Supervertex ids are vertex ids, so label_[l] is meaningful.)
    for (uint64_t v = 0; v < label_.size(); ++v) {
      VertexId l = label_[v];
      while (label_[l] != l) {
        l = label_[l];
      }
      label_[v] = l;
    }
    return label_;
  }

 private:
  bool TryAdmit(VertexId v) {
    if (dict_parent_.count(v) > 0) {
      return true;
    }
    if (dict_parent_.size() >= budget_) {
      return false;
    }
    dict_parent_[v] = v;
    return true;
  }

  VertexId DictFind(VertexId x) {
    while (dict_parent_[x] != x) {
      dict_parent_[x] = dict_parent_[dict_parent_[x]];
      x = dict_parent_[x];
    }
    return x;
  }

  void DictUnion(VertexId a, VertexId b) {
    a = DictFind(a);
    b = DictFind(b);
    if (a != b) {
      dict_parent_[std::max(a, b)] = std::min(a, b);
    }
  }

  uint64_t budget_;
  std::vector<VertexId> label_;
  std::unordered_map<VertexId, VertexId> dict_parent_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_WSTREAM_H_
