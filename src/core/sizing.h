// Partition-count and fanout selection (paper §2.4, §3.4, §4, §5.6).
//
// X-Stream "automatically picks the number of streaming partitions for
// in-memory and out-of-core graphs, using the amount of main memory and the
// cache size as inputs. It also automatically picks the shuffler fanout for
// in-memory graphs, using the number of cache lines as input."
#ifndef XSTREAM_CORE_SIZING_H_
#define XSTREAM_CORE_SIZING_H_

#include <cstddef>
#include <cstdint>

namespace xstream {

// In-memory engine (§4): the number of partitions is a power of two chosen
// so that each partition's vertex *footprint* fits the per-core cache. The
// footprint counts vertex state plus one edge and one update per vertex-ish
// unit ("the sum of vertex data size, edge size and update size"), because
// streamed records must pass through the cache without evicting the states.
//
//   footprint = num_vertices * (state_bytes + edge_bytes + update_bytes)
//   partitions = round_pow2_up(footprint / cache_bytes), clamped to
//   [1, max_partitions].
uint32_t ChooseInMemoryPartitions(uint64_t num_vertices, size_t state_bytes, size_t edge_bytes,
                                  size_t update_bytes, size_t cache_bytes,
                                  uint32_t max_partitions = 1u << 20);

// Out-of-core engine (§3.4): with N = total vertex state bytes, M = memory
// budget and S = the I/O unit needed to reach streaming bandwidth, the
// partition count K must satisfy  N/K + 5*S*K <= M  (the vertex array of one
// partition plus 5 stream buffers of S*K bytes each). Returns the smallest
// viable K; aborts if none exists (memory budget too small — the minimum is
// 2*sqrt(5*N*S) at K = sqrt(N/(5S))).
uint32_t ChooseOutOfCorePartitions(uint64_t vertex_state_bytes, uint64_t memory_budget_bytes,
                                   size_t io_unit_bytes);

// True when some K in [1, 2^20] satisfies the §3.4 inequality.
bool OutOfCorePartitionsViable(uint64_t vertex_state_bytes, uint64_t memory_budget_bytes,
                               size_t io_unit_bytes);

// Hybrid engine residency budget (core/residency.h). Resolves the
// user-requested pin budget against the host: 0 means auto-detect (half of
// physical memory, falling back to 256 MB when the probe fails), and a
// request above the host's physical memory is clamped to it with a warning
// rather than aborting — an oversized budget is a plan that will thrash, not
// a programmer error.
uint64_t ResolveMemoryBudget(uint64_t requested_bytes);

// Multi-stage shuffler fanout (§4.2): the largest power of two not exceeding
// the number of cachelines in the cache (each output chunk needs a resident
// cacheline-sized cursor), capped at the partition count.
uint32_t ChooseShuffleFanout(uint32_t num_partitions, size_t cache_bytes,
                             size_t cacheline_bytes = 64);

// Per-thread staging size for the cache-aware single-stage shuffle (the
// --stage-bytes auto default): half the per-core cache, so the staging
// blocks and the partition-id side array coexist with the streamed records;
// clamped to [64 KB, 8 MB] against probe failures and giant L3-shared
// readings.
size_t DefaultShuffleStageBytes();

// Rounds up to a power of two (minimum 1).
uint32_t RoundUpPow2(uint64_t x);

}  // namespace xstream

#endif  // XSTREAM_CORE_SIZING_H_
