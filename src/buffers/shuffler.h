// Parallel multi-stage shuffler (paper §3.1 "In-memory Data Structures" and
// §4.2 "Parallel Multistage Shuffler").
//
// A shuffle step groups records by target partition without ordering them —
// a counting pass, an offset pass, and a copy pass. For large partition
// counts a single step loses cache locality (one output cursor per
// partition), so partitions are grouped into a tree with fanout F and one
// shuffle step runs per tree level, addressed by the most significant bits
// of the partition id. Two buffers alternate between input and output roles.
//
// Parallelism follows Fig 7: the record range is split into one slice per
// thread; each thread shuffles only its own slice and maintains a private
// index array, so no synchronization is needed inside a stage. The chunk for
// partition p is the union of each slice's chunk p.
#ifndef XSTREAM_BUFFERS_SHUFFLER_H_
#define XSTREAM_BUFFERS_SHUFFLER_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "buffers/stream_buffer.h"
#include "obs/metrics.h"
#include "threads/thread_pool.h"
#include "util/logging.h"

namespace xstream {

// Result of a shuffle: which buffer the records ended in, plus per-slice,
// per-partition chunk index arrays (record units).
template <typename Record>
struct ShuffleOutput {
  Record* data = nullptr;  // final resting buffer (== a or b passed in)
  uint32_t num_partitions = 0;
  int stages_run = 0;
  // chunk for partition p contributed by slice s: slices[s][p].
  std::vector<std::vector<ChunkRef>> slices;

  uint64_t PartitionRecords(uint32_t p) const {
    uint64_t total = 0;
    for (const auto& s : slices) {
      total += s[p].count;
    }
    return total;
  }

  uint64_t TotalRecords() const {
    uint64_t total = 0;
    for (const auto& s : slices) {
      for (const auto& c : s) {
        total += c.count;
      }
    }
    return total;
  }
};

inline uint32_t CeilLog2(uint32_t x) {
  XS_CHECK_GT(x, 0u);
  return x <= 1 ? 0 : 32u - static_cast<uint32_t>(std::countl_zero(x - 1));
}

// Partition ids must fit the staged path's uint16_t side array.
inline constexpr uint32_t kMaxStagedPartitions = 65535;

// Cache-aware single-stage shuffle (--stage-bytes): produces byte-identical
// output to the generic fused loop in ShuffleRecords, with two changes to
// memory behavior. First, part_of — a random lookup under a mapped layout —
// runs once per record instead of twice: a radix pass stores each record's
// partition in a uint16_t side array, unrolled into four independent lanes
// so the compiler can vectorize it (SWAR on the range layout's divide).
// Second, records are scattered through per-partition staging blocks sized
// so all K blocks fit in stage_bytes (~L2); a full block flushes to its
// destination cursor with one streaming memcpy, so the big destination
// buffer sees K sequential write streams instead of K random cursors.
template <typename Record, typename PartOf>
void StagedSingleStageShuffle(ThreadPool& pool, const Record* src, Record* dst,
                              const std::vector<uint64_t>& slice_begin, uint32_t num_partitions,
                              PartOf part_of, size_t stage_bytes,
                              std::vector<std::vector<ChunkRef>>& slices) {
  const uint32_t K = num_partitions;
  const size_t block_records = std::max<size_t>(1, stage_bytes / K / sizeof(Record));
  pool.RunOnAll([&](int tid) {
    const uint64_t begin = slice_begin[static_cast<size_t>(tid)];
    const uint64_t n = slice_begin[static_cast<size_t>(tid) + 1] - begin;
    const Record* in = src + begin;
    auto& my_chunks = slices[static_cast<size_t>(tid)];
    my_chunks.assign(K, ChunkRef{});

    std::vector<uint16_t> pid(n);
    std::vector<uint64_t> counts(K, 0);
    uint64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const uint32_t p0 = static_cast<uint32_t>(part_of(in[i]));
      const uint32_t p1 = static_cast<uint32_t>(part_of(in[i + 1]));
      const uint32_t p2 = static_cast<uint32_t>(part_of(in[i + 2]));
      const uint32_t p3 = static_cast<uint32_t>(part_of(in[i + 3]));
      pid[i] = static_cast<uint16_t>(p0);
      pid[i + 1] = static_cast<uint16_t>(p1);
      pid[i + 2] = static_cast<uint16_t>(p2);
      pid[i + 3] = static_cast<uint16_t>(p3);
      ++counts[p0];
      ++counts[p1];
      ++counts[p2];
      ++counts[p3];
    }
    for (; i < n; ++i) {
      const uint32_t p = static_cast<uint32_t>(part_of(in[i]));
      pid[i] = static_cast<uint16_t>(p);
      ++counts[p];
    }

    // Same node-major cursor assignment as the generic path.
    std::vector<uint64_t> positions(K);
    uint64_t cursor = begin;
    for (uint32_t p = 0; p < K; ++p) {
      my_chunks[p] = ChunkRef{cursor, counts[p]};
      positions[p] = cursor;
      cursor += counts[p];
    }

    std::vector<Record> stage(size_t{K} * block_records);
    std::vector<uint32_t> fill(K, 0);
    for (uint64_t r = 0; r < n; ++r) {
      const uint32_t p = pid[r];
      Record* block = stage.data() + size_t{p} * block_records;
      block[fill[p]] = in[r];
      if (++fill[p] == block_records) {
        std::memcpy(dst + positions[p], block, block_records * sizeof(Record));
        positions[p] += block_records;
        fill[p] = 0;
      }
    }
    for (uint32_t p = 0; p < K; ++p) {
      if (fill[p] > 0) {
        std::memcpy(dst + positions[p], stage.data() + size_t{p} * block_records,
                    fill[p] * sizeof(Record));
      }
    }
  });
}

// Shuffles `count` records (currently in `a`) into partition-grouped chunks,
// alternating between buffers `a` and `b`.
//
//  * num_partitions == K. If `fanout` >= K (or stages == 1), a single
//    counting-shuffle step handles any K. Otherwise K and fanout must both
//    be powers of two (paper §4.2) and ceil(log_F K) steps run.
//  * part_of(record) must return a value < K.
//  * stage_bytes > 0 routes single-stage shuffles (K <=
//    kMaxStagedPartitions) through StagedSingleStageShuffle with that much
//    per-thread staging; the output is byte-identical either way.
//
// Both buffers must hold at least `count` records. Returns the index arrays
// and the buffer the records ended up in.
template <typename Record, typename PartOf>
ShuffleOutput<Record> ShuffleRecords(ThreadPool& pool, Record* a, Record* b, uint64_t count,
                                     uint32_t num_partitions, uint32_t fanout, PartOf part_of,
                                     size_t stage_bytes = 0) {
  static_assert(std::is_trivially_copyable_v<Record>);
  XS_CHECK_GT(num_partitions, 0u);
  XS_CHECK(fanout > 1 || num_partitions == 1)
      << "fanout must exceed 1 when there is more than one partition";

  const int num_slices = pool.num_threads();
  ShuffleOutput<Record> out;
  out.num_partitions = num_partitions;
  out.slices.resize(static_cast<size_t>(num_slices));

  // Fixed slice boundaries: records never leave their slice (Fig 7).
  std::vector<uint64_t> slice_begin(static_cast<size_t>(num_slices) + 1);
  for (int s = 0; s <= num_slices; ++s) {
    slice_begin[static_cast<size_t>(s)] =
        count * static_cast<uint64_t>(s) / static_cast<uint64_t>(num_slices);
  }

  if (num_partitions == 1) {
    out.data = a;
    out.stages_run = 0;
    for (int s = 0; s < num_slices; ++s) {
      auto sb = slice_begin[static_cast<size_t>(s)];
      out.slices[static_cast<size_t>(s)] = {
          ChunkRef{sb, slice_begin[static_cast<size_t>(s) + 1] - sb}};
    }
    return out;
  }

  const uint32_t total_bits = CeilLog2(num_partitions);
  int stages;
  if (fanout >= num_partitions) {
    stages = 1;
  } else {
    XS_CHECK(std::has_single_bit(num_partitions))
        << "multi-stage shuffle requires power-of-two partitions, got " << num_partitions;
    XS_CHECK(std::has_single_bit(fanout)) << "fanout must be a power of two, got " << fanout;
    uint32_t fanout_bits = CeilLog2(fanout);
    stages = static_cast<int>((total_bits + fanout_bits - 1) / fanout_bits);
  }

  if (stages == 1 && stage_bytes > 0 && num_partitions <= kMaxStagedPartitions) {
    StagedSingleStageShuffle(pool, a, b, slice_begin, num_partitions, part_of, stage_bytes,
                             out.slices);
    obs::MetricsRegistry::Global().counter("shuffle.staged_records").Add(count);
    out.data = b;
    out.stages_run = 1;
    return out;
  }

  // Per-slice chunk lists for the current tree level (node-major order).
  std::vector<std::vector<ChunkRef>> cur(static_cast<size_t>(num_slices));
  for (int s = 0; s < num_slices; ++s) {
    auto sb = slice_begin[static_cast<size_t>(s)];
    cur[static_cast<size_t>(s)] = {ChunkRef{sb, slice_begin[static_cast<size_t>(s) + 1] - sb}};
  }

  Record* src = a;
  Record* dst = b;
  uint32_t bits_consumed = 0;

  for (int stage = 0; stage < stages; ++stage) {
    uint32_t remaining = total_bits - bits_consumed;
    uint32_t step_bits;
    if (stages == 1) {
      step_bits = remaining;  // single stage handles arbitrary K below
    } else {
      uint32_t fanout_bits = CeilLog2(fanout);
      step_bits = std::min(fanout_bits, remaining);
    }
    // Children per node this stage. For a single stage with arbitrary K the
    // "bit" framing is bypassed: children == num_partitions.
    const uint64_t children =
        (stages == 1) ? num_partitions : (uint64_t{1} << step_bits);
    const uint32_t next_consumed = bits_consumed + step_bits;
    const uint32_t child_shift = total_bits - next_consumed;
    const uint64_t child_mask = children - 1;

    std::vector<std::vector<ChunkRef>> next(static_cast<size_t>(num_slices));

    pool.RunOnAll([&](int tid) {
      const auto& my_chunks = cur[static_cast<size_t>(tid)];
      auto& my_next = next[static_cast<size_t>(tid)];
      my_next.assign(my_chunks.size() * children, ChunkRef{});

      std::vector<uint64_t> counts(children);
      // Pass 1+2 fused per node: count, assign offsets, copy. Offsets are
      // assigned node-major so children become next-level nodes in order.
      uint64_t cursor = slice_begin[static_cast<size_t>(tid)];
      std::vector<uint64_t> positions(children);
      for (size_t node = 0; node < my_chunks.size(); ++node) {
        const ChunkRef& chunk = my_chunks[node];
        std::fill(counts.begin(), counts.end(), 0);
        const Record* in = src + chunk.begin;
        for (uint64_t r = 0; r < chunk.count; ++r) {
          uint64_t p = part_of(in[r]);
          uint64_t child = (stages == 1) ? p : ((p >> child_shift) & child_mask);
          ++counts[child];
        }
        for (uint64_t c = 0; c < children; ++c) {
          ChunkRef& ref = my_next[node * children + c];
          ref.begin = cursor;
          ref.count = counts[c];
          positions[c] = cursor;
          cursor += counts[c];
        }
        for (uint64_t r = 0; r < chunk.count; ++r) {
          uint64_t p = part_of(in[r]);
          uint64_t child = (stages == 1) ? p : ((p >> child_shift) & child_mask);
          dst[positions[child]++] = in[r];
        }
      }
    });

    cur.swap(next);
    std::swap(src, dst);
    bits_consumed = next_consumed;
  }

  // cur now holds, per slice, 2^total_bits (or K for single-stage) chunks in
  // partition order; trim to exactly K (pow2 rounding can exceed K only when
  // part_of never produces those ids, so the extra chunks are empty).
  out.data = src;
  out.stages_run = stages;
  for (int s = 0; s < num_slices; ++s) {
    auto& chunks = cur[static_cast<size_t>(s)];
    XS_CHECK_GE(chunks.size(), num_partitions);
    chunks.resize(num_partitions);
    out.slices[static_cast<size_t>(s)] = std::move(chunks);
  }
  return out;
}

}  // namespace xstream

#endif  // XSTREAM_BUFFERS_SHUFFLER_H_
