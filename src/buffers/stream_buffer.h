// Stream buffers (paper §3.1, Fig 5).
//
// "In order to avoid the overhead of dynamic memory allocation, we designed
// a statically sized and statically allocated data structure, the stream
// buffer, to store these variable-sized data items. A stream buffer consists
// of a (large) array of bytes called the chunk array, and an index array with
// K entries for K streaming partitions."
//
// StreamBuffer here is the chunk array plus a typed view; the index arrays
// live in ShuffleOutput (per slice, per partition — paper Fig 7) because
// they are (re)built by every shuffle.
#ifndef XSTREAM_BUFFERS_STREAM_BUFFER_H_
#define XSTREAM_BUFFERS_STREAM_BUFFER_H_

#include <cstdint>
#include <span>
#include <type_traits>

#include "util/aligned.h"
#include "util/logging.h"

namespace xstream {

// A contiguous run of records belonging to one partition inside a chunk
// array. Units are records, not bytes.
struct ChunkRef {
  uint64_t begin = 0;
  uint64_t count = 0;
};

class StreamBuffer {
 public:
  StreamBuffer() = default;
  explicit StreamBuffer(size_t capacity_bytes) : bytes_(capacity_bytes) {}

  size_t capacity_bytes() const { return bytes_.size(); }
  std::byte* data() { return bytes_.data(); }
  const std::byte* data() const { return bytes_.data(); }

  // The whole chunk array as a byte span (append targets, bulk copies).
  std::span<std::byte> span() { return {bytes_.data(), bytes_.size()}; }
  std::span<const std::byte> span() const { return {bytes_.data(), bytes_.size()}; }

  // Typed access to the chunk array. The buffer is raw storage; the caller
  // guarantees it was filled with `T` records.
  template <typename T>
  T* records() {
    static_assert(std::is_trivially_copyable_v<T>);
    return reinterpret_cast<T*>(bytes_.data());
  }

  template <typename T>
  const T* records() const {
    static_assert(std::is_trivially_copyable_v<T>);
    return reinterpret_cast<const T*>(bytes_.data());
  }

  template <typename T>
  uint64_t capacity_records() const {
    return bytes_.size() / sizeof(T);
  }

 private:
  AlignedBuffer bytes_;
};

}  // namespace xstream

#endif  // XSTREAM_BUFFERS_STREAM_BUFFER_H_
