#include "iomodel/io_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace xstream {

namespace {

// log base (M/B) of x, clamped below at 1 to keep the bounds monotone for
// degenerate tiny configurations (the paper's asymptotic forms assume
// x > M/B > 2).
double LogMB(const IoModelParams& p, double x) {
  XS_CHECK_GT(p.m, p.b);
  double base = p.m / p.b;
  return std::max(1.0, std::log(std::max(2.0, x)) / std::log(base));
}

}  // namespace

IoModelCosts XStreamIoModel(const IoModelParams& p) {
  double u = p.u > 0 ? p.u : p.e;
  IoModelCosts c;
  c.partitions = std::max(1.0, p.v / p.m);
  c.preprocessing = 0.0;
  c.one_iteration = (p.v + p.e) / p.b + (u / p.b) * LogMB(p, c.partitions);
  c.all_iterations = p.d * (p.v + p.e) / p.b + (p.e / p.b) * LogMB(p, c.partitions);
  return c;
}

IoModelCosts GraphchiIoModel(const IoModelParams& p) {
  IoModelCosts c;
  c.partitions = std::max(1.0, p.e / p.m);
  // Sorting the edges into shards.
  c.preprocessing = (p.e / p.b) * LogMB(p, p.e / p.b);
  c.one_iteration = p.e / p.b + c.partitions * c.partitions;
  c.all_iterations = p.d * c.one_iteration;
  return c;
}

IoModelCosts SortRandomIoModel(const IoModelParams& p) {
  IoModelCosts c;
  c.partitions = p.v;
  c.preprocessing = (p.e / p.b) * LogMB(p, std::min(p.v, p.e / p.m));
  c.one_iteration = 0.0;  // the paper leaves this row's per-iteration cost out
  c.all_iterations = p.v + p.e;
  return c;
}

}  // namespace xstream
