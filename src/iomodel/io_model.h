// Analytic I/O-model cost bounds (paper §5.7, Fig 26).
//
// The paper analyses label propagation from one source to all reachable
// vertices in the Aggarwal-Vitter I/O model: memory of M words, transfers in
// aligned units of B words, graph G = (V, E) with diameter D. Fig 26 lists,
// for X-Stream, Graphchi and sort-plus-random-access, the number of
// partitions, the pre-processing cost, and the per-iteration/total I/O.
// These calculators evaluate those closed forms so the Fig 26 bench can
// print the table for concrete configurations and the test suite can compare
// the bound against bytes actually moved by the out-of-core engine.
#ifndef XSTREAM_IOMODEL_IO_MODEL_H_
#define XSTREAM_IOMODEL_IO_MODEL_H_

#include <cstdint>

namespace xstream {

struct IoModelParams {
  double v = 0;  // |V| in words
  double e = 0;  // |E| in words
  double u = 0;  // |U| (updates per iteration) in words; defaults to e
  double m = 0;  // memory in words
  double b = 0;  // transfer unit in words
  double d = 1;  // diameter (number of scatter phases)
};

struct IoModelCosts {
  double partitions = 0;     // K
  double preprocessing = 0;  // I/Os before the first iteration
  double one_iteration = 0;  // I/Os per scatter-gather iteration
  double all_iterations = 0; // I/Os to complete label propagation
};

// X-Stream row: K = |V|/M, no pre-processing, per-iteration
// (|V|+|E|)/B + (|U|/B) log_{M/B} K, total D(|V|+|E|)/B + (|E|/B) log_{M/B} K.
IoModelCosts XStreamIoModel(const IoModelParams& p);

// Graphchi row (as reported in the Graphchi paper): K = |E|/M, sorting
// pre-processing, per-iteration |E|/B + K^2.
IoModelCosts GraphchiIoModel(const IoModelParams& p);

// Sort + random access row: K = |V|, pre-processing
// (|E|/B) log_{M/B} min(|V|, |E|/M), total |V| + |E| (random accesses).
IoModelCosts SortRandomIoModel(const IoModelParams& p);

}  // namespace xstream

#endif  // XSTREAM_IOMODEL_IO_MODEL_H_
