// Concurrent record appends into a shared chunk array (paper §4.1).
//
// "Each thread first writes to a private buffer (of size 8K), which is
// flushed to the shared output chunk array, by first atomically reserving
// space at the end and then appending the contents of the private buffer."
//
// ConcurrentAppender implements exactly that: per-thread 8 KB staging buffers
// amortize the atomic fetch_add to one per ~8 KB of output.
#ifndef XSTREAM_THREADS_CONCURRENT_APPENDER_H_
#define XSTREAM_THREADS_CONCURRENT_APPENDER_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/logging.h"

namespace xstream {

inline constexpr size_t kAppenderStagingBytes = 8 * 1024;

class ConcurrentAppender {
 public:
  // `target` is the shared chunk array; `record_size` is the fixed record
  // width. The appender never grows the target: callers size it for the
  // worst case (one update per edge).
  ConcurrentAppender(std::span<std::byte> target, size_t record_size, int num_threads)
      : target_(target),
        record_size_(record_size),
        tail_(0),
        slots_(static_cast<size_t>(num_threads)) {
    XS_CHECK_GT(record_size, 0u);
    size_t per_slot_records = kAppenderStagingBytes / record_size;
    XS_CHECK_GT(per_slot_records, 0u) << "record too large for staging buffer";
    for (auto& slot : slots_) {
      slot.staging.resize(per_slot_records * record_size);
      slot.used = 0;
    }
  }

  // Appends one record from thread `tid`. The copy into staging is
  // record-size bound; the shared atomic is touched only on flush.
  void Append(int tid, const void* record) {
    Slot& slot = slots_[static_cast<size_t>(tid)];
    if (slot.used + record_size_ > slot.staging.size()) {
      FlushSlot(slot);
    }
    std::memcpy(slot.staging.data() + slot.used, record, record_size_);
    slot.used += record_size_;
  }

  // Flushes every thread's staging buffer. Must be called (by one thread,
  // after a join) before the appended region is consumed.
  void FlushAll() {
    for (auto& slot : slots_) {
      if (slot.used > 0) {
        FlushSlot(slot);
      }
    }
  }

  // Bytes appended so far (valid after FlushAll).
  size_t bytes() const { return tail_.load(std::memory_order_acquire); }
  size_t records() const { return bytes() / record_size_; }

  // Empties the appender for reuse over the same target — the spill path
  // calls this after each drained batch so scatter can refill the buffer
  // without reconstructing the staging slots. Single-threaded, after a join.
  void Reset() {
    tail_.store(0, std::memory_order_release);
    for (auto& slot : slots_) {
      slot.used = 0;
    }
  }

  // Rewinds the shared tail after the caller compacted the target in place
  // (single-threaded, after FlushAll; `bytes` must not exceed the current
  // tail and must be record-aligned).
  void Rewind(size_t bytes) {
    XS_CHECK_LE(bytes, tail_.load(std::memory_order_acquire));
    XS_CHECK_EQ(bytes % record_size_, 0u);
    tail_.store(bytes, std::memory_order_release);
  }

 private:
  struct alignas(64) Slot {
    std::vector<std::byte> staging;
    size_t used = 0;
  };

  void FlushSlot(Slot& slot) {
    size_t offset = tail_.fetch_add(slot.used, std::memory_order_acq_rel);
    XS_CHECK_LE(offset + slot.used, target_.size()) << "appender overflow";
    std::memcpy(target_.data() + offset, slot.staging.data(), slot.used);
    slot.used = 0;
  }

  std::span<std::byte> target_;
  size_t record_size_;
  std::atomic<size_t> tail_;
  std::vector<Slot> slots_;
};

}  // namespace xstream

#endif  // XSTREAM_THREADS_CONCURRENT_APPENDER_H_
