#include "threads/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace xstream {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    XS_CHECK(job_ == nullptr) << "RunOnAll is not reentrant";
    job_ = &fn;
    outstanding_ = num_threads_ - 1;
    ++generation_;
  }
  job_ready_.notify_all();

  fn(0);  // The caller participates as thread 0.

  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int thread_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock,
                      [&] { return shutdown_ || (job_ != nullptr && generation_ != seen_generation); });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    (*job)(thread_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        job_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>& body) {
  ParallelForTid(begin, end, grain,
                 [&body](int, uint64_t lo, uint64_t hi) { body(lo, hi); });
}

void ThreadPool::ParallelForTid(uint64_t begin, uint64_t end, uint64_t grain,
                                const std::function<void(int, uint64_t, uint64_t)>& body) {
  if (begin >= end) {
    return;
  }
  XS_CHECK_GT(grain, 0u);
  if (num_threads_ == 1 || end - begin <= grain) {
    body(0, begin, end);
    return;
  }
  std::atomic<uint64_t> next{begin};
  RunOnAll([&](int tid) {
    for (;;) {
      uint64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) {
        return;
      }
      body(tid, lo, std::min(end, lo + grain));
    }
  });
}

}  // namespace xstream
