// Persistent thread pool.
//
// X-Stream's parallelism (paper §4.1) is phase-structured: every scatter,
// shuffle and gather phase runs the same function on all threads and then
// joins. RunOnAll is exactly that primitive; ParallelFor is a dynamic
// (self-balancing) loop built on top of it for edge/update chunk processing.
#ifndef XSTREAM_THREADS_THREAD_POOL_H_
#define XSTREAM_THREADS_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xstream {

class ThreadPool {
 public:
  // Spawns `num_threads` workers. Thread ids passed to jobs are in
  // [0, num_threads); the calling thread also participates as thread 0, so a
  // pool of size N spawns N-1 workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(thread_id) on every thread (including the caller as id 0) and
  // returns once all have finished. Acts as a barrier between phases.
  void RunOnAll(const std::function<void(int)>& fn);

  // Dynamically-scheduled parallel loop over [begin, end): threads claim
  // `grain`-sized blocks with an atomic counter, which gives the same load
  // balancing effect as work stealing for flat iteration spaces.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

  // Like ParallelFor but passes the executing thread id, for bodies that use
  // per-thread structures (e.g. ConcurrentAppender staging slots).
  void ParallelForTid(uint64_t begin, uint64_t end, uint64_t grain,
                      const std::function<void(int, uint64_t, uint64_t)>& body);

 private:
  void WorkerLoop(int thread_id);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace xstream

#endif  // XSTREAM_THREADS_THREAD_POOL_H_
