// Work-stealing queues of streaming partitions (paper §4.1).
//
// "Executing streaming partitions in parallel can lead to significant
// workload imbalance as the partitions can have different numbers of edges
// assigned to them. We therefore implemented work stealing in X-Stream,
// allowing threads to steal streaming partitions from each other."
//
// Each thread owns a deque of partition ids; it pops from the front of its
// own deque and steals from the back of a victim's. Partition granularity is
// coarse (at most a few thousand per run), so a per-queue mutex is cheap.
#ifndef XSTREAM_THREADS_WORK_STEALING_H_
#define XSTREAM_THREADS_WORK_STEALING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace xstream {

class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(int num_threads)
      : queues_(static_cast<size_t>(num_threads)), steals_(0) {}

  // Distributes items [0, count) round-robin across the thread queues.
  void Distribute(uint32_t count) {
    for (auto& q : queues_) {
      std::lock_guard<std::mutex> lock(q.mu);
      q.items.clear();
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto& q = queues_[i % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mu);
      q.items.push_back(i);
    }
  }

  // Pushes a single item onto `thread`'s queue.
  void Push(int thread, uint32_t item) {
    auto& q = queues_[static_cast<size_t>(thread)];
    std::lock_guard<std::mutex> lock(q.mu);
    q.items.push_back(item);
  }

  // Pops an item for `thread`: its own queue first, then (when allowed)
  // steals from other queues. Returns false when no work is available.
  // `allow_steal = false` gives the static-assignment baseline used by the
  // work-stealing ablation.
  bool Pop(int thread, uint32_t& item, bool allow_steal = true) {
    auto& own = queues_[static_cast<size_t>(thread)];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.items.empty()) {
        item = own.items.front();
        own.items.pop_front();
        return true;
      }
    }
    if (!allow_steal) {
      return false;
    }
    // Steal: scan victims starting just after this thread.
    size_t n = queues_.size();
    for (size_t k = 1; k < n; ++k) {
      auto& victim = queues_[(static_cast<size_t>(thread) + k) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.items.empty()) {
        item = victim.items.back();
        victim.items.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  uint64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }
  void reset_steal_count() { steals_.store(0, std::memory_order_relaxed); }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<uint32_t> items;
  };

  std::vector<Queue> queues_;
  std::atomic<uint64_t> steals_;
};

}  // namespace xstream

#endif  // XSTREAM_THREADS_WORK_STEALING_H_
