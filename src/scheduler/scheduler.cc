#include "scheduler/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/logging.h"

namespace xstream {

std::string JobReportsToJson(const std::vector<JobReport>& reports) {
  JsonWriter w;
  w.BeginArray();
  for (const JobReport& r : reports) {
    w.BeginObject();
    w.Field("id", r.id);
    w.Field("name", std::string_view(r.name));
    w.Field("tenant", std::string_view(r.tenant));
    w.Field("state", std::string_view(JobStateName(r.state)));
    w.Field("rounds", r.rounds);
    w.Field("partitions_done", static_cast<uint64_t>(r.partitions_done));
    w.Field("partitions_total", static_cast<uint64_t>(r.partitions_total));
    w.Field("queue_seconds", r.queue_seconds);
    w.Field("run_seconds", r.run_seconds);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

JobScheduler::JobScheduler(ScanSource& source, SchedulerOptions opts)
    : source_(source), opts_(opts) {}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    XS_CHECK(!driving_) << "JobScheduler destroyed while a thread is driving it";
  }
  for (ActiveJob& aj : active_) {
    aj.job->Abandon();
  }
}

JobScheduler::Tenant& JobScheduler::TenantLocked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    auto configured = opts_.tenants.find(name);
    t.quota = configured != opts_.tenants.end() ? configured->second : opts_.default_quota;
    if (!(t.quota.weight > 0.0)) {
      t.quota.weight = 1.0;  // a zero/negative weight would wedge fair share
    }
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

JobId JobScheduler::Submit(std::unique_ptr<ScheduledJob> job) {
  SubmitOutcome outcome = TrySubmit(std::move(job), "");
  XS_CHECK(outcome.accepted) << "Submit rejected: " << outcome.reason
                             << " (use TrySubmit for quota-bearing tenants)";
  return outcome.id;
}

SubmitOutcome JobScheduler::TrySubmit(std::unique_ptr<ScheduledJob> job,
                                      const std::string& tenant) {
  XS_CHECK(job != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  Tenant& t = TenantLocked(tenant);
  SubmitOutcome outcome;
  if (t.quota.max_queued > 0 && t.queued >= t.quota.max_queued) {
    outcome.reason = "tenant queue full (" + std::to_string(t.quota.max_queued) + " queued)";
  } else if (t.quota.memory_share > 0.0 && opts_.memory_budget_bytes > 0) {
    uint64_t cap = static_cast<uint64_t>(t.quota.memory_share *
                                         static_cast<double>(opts_.memory_budget_bytes));
    uint64_t fixed = job->FixedBytes();
    if (fixed > cap) {
      outcome.reason = "job fixed footprint " + std::to_string(fixed) +
                       "B exceeds tenant memory share " + std::to_string(cap) + "B";
    }
  }
  if (!outcome.reason.empty()) {
    ++t.rejected;
    ++stats_.jobs_rejected;
    obs::MetricsRegistry::Global().counter("scheduler.jobs_rejected").Add();
    return outcome;  // job destroyed on return
  }
  JobId id = next_id_++;
  Record rec;
  rec.name = job->name();
  rec.tenant = tenant;
  rec.state = JobState::kQueued;
  rec.submit_seconds = clock_.Seconds();
  records_.emplace(id, std::move(rec));
  pending_.push_back(PendingJob{id, tenant, std::move(job)});
  ++t.queued;
  ++t.submitted;
  ++stats_.jobs_submitted;
  cv_.notify_all();
  outcome.accepted = true;
  outcome.id = id;
  return outcome;
}

JobState JobScheduler::Poll(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(id);
  XS_CHECK(it != records_.end()) << "unknown job id " << id;
  return it->second.state;
}

void JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(id);
  if (it == records_.end() || it->second.state == JobState::kDone ||
      it->second.state == JobState::kCancelled) {
    return;
  }
  cancel_requests_.insert(id);
}

bool JobScheduler::Wait(JobId id) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = records_.find(id);
      XS_CHECK(it != records_.end()) << "unknown job id " << id;
      if (it->second.state == JobState::kDone) {
        return true;
      }
      if (it->second.state == JobState::kCancelled) {
        return false;
      }
    }
    PumpOne();
  }
}

void JobScheduler::RunAll() {
  while (PumpOne()) {
  }
}

bool JobScheduler::PumpOne() {
  std::unique_lock<std::mutex> lk(mu_);
  if (driving_) {
    // Another thread owns the rounds; wait for its boundary to land rather
    // than interleaving two drivers. active_ itself belongs to the driver,
    // so the work check reads the mu_-mirrored count.
    cv_.wait(lk);
    return HasWorkLocked();
  }
  driving_ = true;
  lk.unlock();
  bool more;
  try {
    more = Step();
  } catch (...) {
    // A job's I/O error (spill writes propagate by design) must release the
    // driver role, or every later PumpOne/Wait blocks forever and the
    // destructor aborts on its driving_ check.
    lk.lock();
    driving_ = false;
    cv_.notify_all();
    throw;
  }
  lk.lock();
  driving_ = false;
  cv_.notify_all();
  return more;
}

bool JobScheduler::HasWorkLocked() const {
  return !pending_.empty() || !cancel_requests_.empty() || active_count_ > 0;
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  SchedulerStats snapshot = stats_;
  snapshot.edge_reads_avoided_bytes = source_.EdgeReadsAvoidedBytes();
  return snapshot;
}

std::vector<TenantStats> JobScheduler::tenant_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStats s;
    s.tenant = name;
    s.weight = t.quota.weight;
    s.deficit = t.deficit;
    s.queued = t.queued;
    s.running = t.running;
    s.submitted = t.submitted;
    s.rejected = t.rejected;
    s.completed = t.completed;
    s.cancelled = t.cancelled;
    out.push_back(std::move(s));
  }
  return out;
}

JobReport JobScheduler::ReportLocked(JobId id, const Record& rec) const {
  JobReport report;
  report.id = id;
  report.name = rec.name;
  report.tenant = rec.tenant;
  report.state = rec.state;
  report.rounds = rec.rounds;
  report.partitions_done = rec.partitions_done;
  report.partitions_total = source_.layout().num_partitions();
  double now = clock_.Seconds();
  switch (rec.state) {
    case JobState::kQueued:
      report.queue_seconds = now - rec.submit_seconds;
      break;
    case JobState::kRunning:
      report.queue_seconds = rec.admit_seconds - rec.submit_seconds;
      report.run_seconds = now - rec.admit_seconds;
      break;
    case JobState::kDone:
      report.queue_seconds = rec.admit_seconds - rec.submit_seconds;
      report.run_seconds = rec.finish_seconds - rec.admit_seconds;
      break;
    case JobState::kCancelled:
      // A job cancelled while queued never ran.
      if (rec.admit_seconds > 0.0) {
        report.queue_seconds = rec.admit_seconds - rec.submit_seconds;
        report.run_seconds = rec.finish_seconds - rec.admit_seconds;
      } else {
        report.queue_seconds = rec.finish_seconds - rec.submit_seconds;
      }
      break;
  }
  return report;
}

JobReport JobScheduler::report(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(id);
  XS_CHECK(it != records_.end()) << "unknown job id " << id;
  return ReportLocked(id, it->second);
}

std::vector<JobReport> JobScheduler::reports() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobReport> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    out.push_back(ReportLocked(id, rec));
  }
  return out;
}

void JobScheduler::ApplyCancellations() {
  std::vector<std::unique_ptr<ScheduledJob>> doomed;
  std::vector<JobId> active_cancels;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (JobId id : cancel_requests_) {
      auto pending = std::find_if(pending_.begin(), pending_.end(),
                                  [id](const PendingJob& p) { return p.id == id; });
      if (pending != pending_.end()) {
        Tenant& t = TenantLocked(pending->tenant);
        --t.queued;
        ++t.cancelled;
        doomed.push_back(std::move(pending->job));
        pending_.erase(pending);
        Record& rec = records_[id];
        rec.state = JobState::kCancelled;
        rec.finish_seconds = clock_.Seconds();
        ++stats_.jobs_cancelled;
      } else {
        active_cancels.push_back(id);
      }
    }
    cancel_requests_.clear();
  }
  for (JobId id : active_cancels) {
    auto it = std::find_if(active_.begin(), active_.end(),
                           [id](const ActiveJob& a) { return a.id == id; });
    if (it != active_.end()) {
      RetireActive(static_cast<size_t>(it - active_.begin()), JobState::kCancelled);
    }
  }
}

void JobScheduler::AdmitPending() {
  std::vector<PendingJob> admitted;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // One admission slot per loop iteration: deposit 1.0 credit split by
    // weight across the eligible waiting tenants, then the largest deficit
    // admits its oldest job and pays the full 1.0. Deposits equal charges,
    // so deficits are conserved and long-run shares match the weights.
    while (!pending_.empty()) {
      if (opts_.max_active_jobs > 0 &&
          active_count_ + admitted.size() >= opts_.max_active_jobs) {
        break;
      }
      // Each waiting tenant's candidate is its oldest pending job (emplace
      // keeps the first, i.e. lowest, index per tenant).
      std::map<std::string, size_t> fronts;
      for (size_t i = 0; i < pending_.size(); ++i) {
        fronts.emplace(pending_[i].tenant, i);
      }
      double eligible_weight = 0.0;
      std::vector<std::pair<std::string, size_t>> eligible;
      for (const auto& [name, idx] : fronts) {
        Tenant& t = TenantLocked(name);
        if (t.quota.max_running > 0 && t.running >= t.quota.max_running) {
          continue;  // quota-blocked tenants sit out the slot (and its credit)
        }
        uint64_t fixed = pending_[idx].job->FixedBytes();
        bool fits = opts_.memory_budget_bytes == 0 ||
                    fixed_in_use_ + fixed <= opts_.memory_budget_bytes;
        if (!fits) {
          continue;
        }
        eligible.emplace_back(name, idx);
        eligible_weight += t.quota.weight;
      }
      size_t pick = pending_.size();
      if (eligible.empty()) {
        // Nothing fits. With jobs running (or already admitted this
        // boundary) the waiters simply try again at the next boundary; with
        // the scheduler otherwise idle, refusing would deadlock the queue,
        // so the oldest quota-free job is admitted over budget (the
        // pre-tenant "big job alone" escape hatch, warning preserved).
        if (active_count_ + admitted.size() > 0) {
          break;
        }
        for (size_t i = 0; i < pending_.size(); ++i) {
          Tenant& t = TenantLocked(pending_[i].tenant);
          if (t.quota.max_running > 0 && t.running >= t.quota.max_running) {
            continue;
          }
          pick = i;
          break;
        }
        if (pick == pending_.size()) {
          break;  // every tenant is at max_running with nothing active: impossible
                  // to make progress here, retirements will reopen slots
        }
        XS_LOG(Warning) << "job '" << pending_[pick].job->name() << "' fixed footprint "
                        << pending_[pick].job->FixedBytes()
                        << "B exceeds the scheduler budget " << opts_.memory_budget_bytes
                        << "B; admitting it alone";
      } else {
        const std::string* best = nullptr;
        for (const auto& [name, idx] : eligible) {
          Tenant& t = TenantLocked(name);
          t.deficit += t.quota.weight / eligible_weight;
          // Ties break toward the oldest waiting job, keeping single-tenant
          // workloads exactly FIFO.
          if (best == nullptr || t.deficit > tenants_.at(*best).deficit ||
              (t.deficit == tenants_.at(*best).deficit && idx < pick)) {
            best = &name;
            pick = idx;
          }
        }
        tenants_.at(*best).deficit -= 1.0;
      }
      Tenant& t = TenantLocked(pending_[pick].tenant);
      --t.queued;
      ++t.running;
      fixed_in_use_ += pending_[pick].job->FixedBytes();
      admitted.push_back(std::move(pending_[pick]));
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  if (admitted.empty()) {
    return;
  }
  size_t first_new = active_.size();
  for (PendingJob& p : admitted) {
    obs::TraceSpan span("admission", "scheduler", -1, p.job->name());
    uint64_t fixed = p.job->FixedBytes();
    p.job->Activate();
    double now = clock_.Seconds();
    {
      std::lock_guard<std::mutex> lk(mu_);
      Record& rec = records_[p.id];
      rec.state = JobState::kRunning;
      rec.admit_seconds = now;
      p.job->stats().queue_seconds = now - rec.submit_seconds;
      obs::MetricsRegistry::Global()
          .histogram("scheduler.queue_seconds")
          .Observe(now - rec.submit_seconds);
      ++active_count_;
    }
    obs::MetricsRegistry::Global().counter("scheduler.jobs_admitted").Add();
    active_.push_back(ActiveJob{p.id, std::move(p.tenant), std::move(p.job), cursor_, fixed, 0});
  }
  // Split the budget before the newcomers' first BeginRound so their share
  // lands on iteration 1 (already running jobs pick theirs up at their next
  // boundary).
  ResplitBudget();
  for (size_t i = first_new; i < active_.size(); ++i) {
    active_[i].job->BeginRound();
  }
}

void JobScheduler::RetireActive(size_t index, JobState final_state) {
  ActiveJob aj = std::move(active_[static_cast<size_t>(index)]);
  active_.erase(active_.begin() + static_cast<ptrdiff_t>(index));
  obs::TraceSpan span("retirement", "scheduler", -1, aj.job->name());
  obs::MetricsRegistry::Global().counter("scheduler.jobs_retired").Add();
  if (final_state == JobState::kDone) {
    aj.job->Finalize();
  } else {
    aj.job->Abandon();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    Record& rec = records_[aj.id];
    rec.state = final_state;
    rec.finish_seconds = clock_.Seconds();
    rec.rounds = aj.rounds;
    if (final_state == JobState::kDone) {
      // Terminal reports read "full cycle", not the wrapped-to-zero cursor.
      rec.partitions_done = source_.layout().num_partitions();
    }
    fixed_in_use_ -= std::min(fixed_in_use_, aj.fixed_bytes);
    --active_count_;
    // Quota release: the tenant's running slot frees here, at retirement,
    // so a follow-on job can admit at this very boundary.
    Tenant& t = TenantLocked(aj.tenant);
    --t.running;
    if (final_state == JobState::kDone) {
      ++stats_.jobs_completed;
      ++t.completed;
    } else {
      ++stats_.jobs_cancelled;
      ++t.cancelled;
    }
  }
  ResplitBudget();
}

void JobScheduler::ResplitBudget() {
  if (opts_.memory_budget_bytes == 0) {
    return;  // unlimited: jobs keep their own configured pin budgets
  }
  uint64_t pin_capable = 0;
  for (const ActiveJob& aj : active_) {
    pin_capable += aj.job->CanPin() ? 1 : 0;
  }
  if (pin_capable == 0) {
    return;
  }
  uint64_t pool = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The shared pinned-edge cache is NOT subtracted here: every pinning
    // job prices edge bytes into its own plan, so the pin-budget shares
    // already bound the cache. Charging it again would double-count and
    // form a budget/cache feedback loop.
    pool = opts_.memory_budget_bytes > fixed_in_use_
               ? opts_.memory_budget_bytes - fixed_in_use_
               : 0;
    ++stats_.budget_resplits;
  }
  obs::MetricsRegistry::Global().counter("scheduler.budget_resplits").Add();
  // Each share lands as a forced PlanDelta at the job's next iteration
  // boundary: only the partitions the new budget flips migrate, one at a
  // time at their scatter boundaries (HybridStreamStore::SetPinBudget).
  for (ActiveJob& aj : active_) {
    if (aj.job->CanPin()) {
      aj.job->SetPinBudget(pool / pin_capable);
    }
  }
}

bool JobScheduler::Step() {
  ApplyCancellations();
  AdmitPending();
  if (active_.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    return HasWorkLocked();
  }


  // --- The shared scan of one partition: read each chunk once, fan it out
  // to every job that takes part this round.
  uint32_t k = source_.layout().num_partitions();
  uint32_t s = cursor_;
  std::vector<ActiveJob*> participants;
  participants.reserve(active_.size());
  for (ActiveJob& aj : active_) {
    if (aj.job->WantsPartition(s)) {
      participants.push_back(&aj);
    }
  }
  if (!participants.empty()) {
    for (ActiveJob* aj : participants) {
      aj->job->BeginScatterPartition(s);
    }
    source_.ForEachEdgeChunk(s, [&participants](const Edge* es, uint64_t n) {
      for (ActiveJob* aj : participants) {
        aj->job->ScatterChunk(es, n);
      }
    });
    for (ActiveJob* aj : participants) {
      aj->job->EndScatterPartition();
    }
    uint64_t bytes = source_.PartitionEdgeBytes(s);
    obs::MetricGroup sched(obs::MetricsRegistry::Global(), "scheduler");
    sched.counter("partition_scans").Add();
    sched.counter("scans_saved").Add(participants.size() - 1);
    sched.counter("saved_scan_bytes").Add(bytes * (participants.size() - 1));
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.partition_scans;
    stats_.shared_scan_bytes += bytes;
    stats_.scans_saved += participants.size() - 1;
    stats_.saved_scan_bytes += bytes * (participants.size() - 1);
  }
  cursor_ = (s + 1) % k;

  // --- Live progress: how far each active job's round has come through the
  // partition cycle, mirrored under mu_ so reports()/GET /jobs see it
  // mid-round. A job that just wrapped reads 0 here; the boundary loop
  // below immediately folds that wrap into its round count.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const ActiveJob& aj : active_) {
      records_[aj.id].partitions_done = (cursor_ + k - aj.start_partition) % k;
    }
  }

  // --- Round boundaries: jobs whose cycle wrapped finish their iteration
  // (tail spill + gather) and either retire or begin the next round.
  for (size_t i = 0; i < active_.size();) {
    if (active_[i].start_partition != cursor_) {
      ++i;
      continue;
    }
    bool done = active_[i].job->FinishRound();
    ++active_[i].rounds;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.rounds_completed;
      records_[active_[i].id].rounds = active_[i].rounds;
    }
    if (done) {
      RetireActive(i, JobState::kDone);
    } else {
      active_[i].job->BeginRound();
      ++i;
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  return HasWorkLocked();
}

}  // namespace xstream
