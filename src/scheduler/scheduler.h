// JobScheduler: N concurrent algorithm jobs over one graph, one edge scan.
//
// The scheduler owns a ScanSource (the partitioned edge streams, on devices
// or in RAM) and admits jobs — algorithm + parameters + a private vertex
// slab and update stream each — through Submit/Poll/Wait/Cancel. Its core
// mechanism is *scan sharing*: the driving thread walks the partitions in a
// rotating cursor and streams each partition's edge chunks exactly once,
// fanning every loaded chunk out to all active jobs' scatter phases
// (StreamingPhaseDriver's multi-job scatter mode). Per-job shuffles, update
// spills and gathers stay independent, so each job's results are what its
// solo run would produce while the edge-device read volume stays ~flat in
// the number of jobs (bench/fig30_scan_sharing.cc).
//
// Round structure: a job's iteration is one full cycle of the partition
// cursor starting from the partition at which it was admitted — updates are
// unordered within an X-Stream iteration, so the rotation is legal — which
// lets late arrivals join at the next partition boundary instead of waiting
// for a global round, and lets converged jobs retire without stalling the
// rest. Cancellations also take effect at partition boundaries.
//
// Admission control: an optional memory budget gates admission by each
// job's fixed footprint (vertex slabs + stream buffers), and whatever
// remains is re-split evenly across the pin-capable (hybrid-store) jobs'
// residency planners every time a job enters or leaves — ResidencyPlanner
// budgets move at runtime.
//
// Fair-share admission: jobs carry a tenant label, and admission slots are
// granted by weighted deficit counters instead of global FIFO. Each slot
// deposits exactly 1.0 credit, split across the admission-eligible waiting
// tenants in proportion to their weights; the tenant with the largest
// deficit admits its oldest job and is charged the full 1.0. Credit is
// conserved, so shares converge to the configured weight ratios exactly and
// a flooding tenant waits at most ~ceil(total_weight / weight) slots before
// any other backlogged tenant gets a turn — starvation-freedom with no
// aging heuristics. Per-tenant quotas bound concurrent jobs (waits at
// admission), queue depth and per-job memory share (both reject at submit;
// the serve layer maps rejections to HTTP 429).
//
// Threading: Submit/Poll/Wait/Cancel are thread-safe. The rounds themselves
// run on whichever single thread is driving (PumpOne/RunAll/Wait hand the
// driver role off under a mutex); jobs' compute uses the shared ThreadPool.
#ifndef XSTREAM_SCHEDULER_SCHEDULER_H_
#define XSTREAM_SCHEDULER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "scheduler/job.h"
#include "scheduler/scan_source.h"
#include "util/timer.h"

namespace xstream {

using JobId = uint64_t;

/// Per-tenant scheduling policy. The zero-ish defaults mean "no limit", so
/// an unconfigured tenant behaves like the pre-tenant scheduler.
struct TenantQuota {
  /// Relative share of admission slots (must be > 0). A weight-3 tenant
  /// admits 3x the jobs of a weight-1 tenant when both stay backlogged.
  double weight = 1.0;
  /// Max concurrently running jobs (0 = unlimited). Excess jobs queue.
  uint32_t max_running = 0;
  /// Max queued (submitted, not yet admitted) jobs (0 = unlimited). Excess
  /// submissions are rejected by TrySubmit.
  uint32_t max_queued = 0;
  /// Max fraction of the scheduler memory budget one of this tenant's jobs
  /// may claim as fixed footprint (0 = unlimited). Oversized submissions
  /// are rejected by TrySubmit. Only enforced when the scheduler has a
  /// budget.
  double memory_share = 0.0;
};

/// Scheduler configuration. Thread-safety: plain data, set before
/// constructing the scheduler.
struct SchedulerOptions {
  /// Memory budget split across active jobs (0 = unlimited): fixed job
  /// footprints gate admission; the remainder becomes the pin-capable
  /// jobs' residency budgets (which price everything a pin holds,
  /// including shared-cache edge bytes, so the split bounds total RAM). A
  /// job bigger than the whole budget is still admitted when it is alone
  /// (with a warning) rather than deadlocking the queue.
  uint64_t memory_budget_bytes = 0;
  /// Global ceiling on concurrently running jobs (0 = unlimited).
  uint32_t max_active_jobs = 0;
  /// Quota applied to tenants absent from `tenants` (including the ""
  /// tenant that plain Submit uses).
  TenantQuota default_quota;
  /// Per-tenant quota overrides, keyed by tenant name.
  std::map<std::string, TenantQuota> tenants;
};

/// Aggregate scheduler counters (a snapshot copy; see stats()).
struct SchedulerStats {
  uint64_t partition_scans = 0;    // partition edge streams actually read
  uint64_t scans_saved = 0;        // scatter passes served beyond the first
  uint64_t shared_scan_bytes = 0;  // edge bytes the shared scan read
  uint64_t saved_scan_bytes = 0;   // edge bytes jobs would have re-read naively
  uint64_t rounds_completed = 0;   // per-job iteration boundaries processed
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_rejected = 0;  // TrySubmit refusals (queue depth / memory share)
  uint64_t budget_resplits = 0;  // admission/retirement pin-budget re-splits
  // Edge bytes the scan source served from its shared pinned-edge cache
  // instead of the edge device (hybrid jobs with pin_edges).
  uint64_t edge_reads_avoided_bytes = 0;
};

/// One tenant's scheduling counters (a snapshot copy; see tenant_stats()).
struct TenantStats {
  std::string tenant;       // "" = the anonymous/default tenant
  double weight = 1.0;      // effective weight (quota lookup result)
  double deficit = 0.0;     // current fair-share credit balance
  uint32_t queued = 0;      // submitted, not yet admitted
  uint32_t running = 0;     // admitted, not yet retired
  uint64_t submitted = 0;   // accepted submissions
  uint64_t rejected = 0;    // TrySubmit refusals
  uint64_t completed = 0;
  uint64_t cancelled = 0;
};

/// Why TrySubmit said no (also surfaced to HTTP clients by the serve layer).
struct SubmitOutcome {
  bool accepted = false;
  JobId id = 0;        // valid when accepted
  std::string reason;  // human-readable rejection cause when !accepted
};

/// One job's lifecycle summary (a snapshot copy; see report()).
struct JobReport {
  JobId id = 0;
  std::string name;
  std::string tenant;
  JobState state = JobState::kQueued;
  double queue_seconds = 0.0;  // submit -> admission (or cancellation)
  double run_seconds = 0.0;    // admission -> completion (or so far)
  uint64_t rounds = 0;         // iterations completed under the scheduler
  // Progress through the current round's partition cycle: boundaries the
  // shared cursor has passed since this job's round began, out of the
  // layout's partition count. Resets to 0 as each round wraps; stays at
  // its last value once the job is terminal.
  uint32_t partitions_done = 0;
  uint32_t partitions_total = 0;
};

/// Renders reports as a JSON array (the GET /jobs payload; also consumed by
/// tests). Stable keys: id, name, tenant, state, rounds, partitions_done,
/// partitions_total, queue_seconds, run_seconds.
std::string JobReportsToJson(const std::vector<JobReport>& reports);

/// N concurrent algorithm jobs over one shared edge scan.
///
/// Thread-safety: Submit / Poll / Cancel / stats / report / reports are
/// safe from any thread. Wait / RunAll / PumpOne may also be called from
/// any thread, but only one thread at a time holds the internal driver
/// role; the others wait for its partition boundary to land. The
/// constructor and destructor must not race any other member.
class JobScheduler {
 public:
  /// Does not block; the source must outlive the scheduler.
  JobScheduler(ScanSource& source, SchedulerOptions opts = {});
  /// Tear-down abandons any jobs still queued or running — blocks draining
  /// their in-flight I/O. Callers must not be driving or waiting
  /// concurrently.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job under the anonymous tenant ""; it joins the scan at the
  /// next partition boundary with a budget slot. Thread-safe; never blocks
  /// on I/O. Aborts if the default quota rejects (use TrySubmit when
  /// rejection is an expected outcome).
  JobId Submit(std::unique_ptr<ScheduledJob> job);

  /// Quota-checked submission for `tenant`: rejects (returning the job
  /// untouched inside the scheduler — it is destroyed) when the tenant's
  /// queue is at max_queued or the job's fixed footprint exceeds its
  /// memory_share of the budget. Thread-safe; never blocks on I/O.
  SubmitOutcome TrySubmit(std::unique_ptr<ScheduledJob> job, const std::string& tenant);

  /// Current lifecycle state. Thread-safe; never blocks on I/O. Aborts on
  /// an unknown id.
  JobState Poll(JobId id) const;

  /// Requests cancellation; it takes effect at the next driven partition
  /// boundary (queued jobs never start, running jobs abandon their round
  /// there). Poll reports kCancelled once a boundary has processed the
  /// request. Unknown/finished ids are a no-op. Thread-safe; never blocks
  /// on I/O.
  void Cancel(JobId id);

  /// Blocks until the job is terminal, driving rounds (and therefore doing
  /// the jobs' compute and I/O on this thread) whenever no other thread
  /// is. Returns true if the job completed (false = cancelled).
  bool Wait(JobId id);

  /// Drives until no queued or active jobs remain. Blocks for the whole
  /// remaining workload.
  void RunAll();

  /// Drives one partition boundary (admissions, one shared scan, round
  /// finishes, retirements) — blocking on that boundary's compute and I/O;
  /// if another thread is driving, waits for its boundary instead. Returns
  /// whether work may remain. Exposed for step-wise tests and external run
  /// loops.
  bool PumpOne();

  /// Snapshot accessors. Thread-safe; never block on I/O.
  SchedulerStats stats() const;
  JobReport report(JobId id) const;
  std::vector<JobReport> reports() const;
  std::vector<TenantStats> tenant_stats() const;

 private:
  struct PendingJob {
    JobId id = 0;
    std::string tenant;
    std::unique_ptr<ScheduledJob> job;
  };
  struct ActiveJob {
    JobId id = 0;
    std::string tenant;
    std::unique_ptr<ScheduledJob> job;
    uint32_t start_partition = 0;  // round boundary: cursor wrap to here
    uint64_t fixed_bytes = 0;
    uint64_t rounds = 0;
  };
  // Live per-tenant admission state, created lazily at first submission.
  struct Tenant {
    TenantQuota quota;
    double deficit = 0.0;  // fair-share credit; conserved across the map
    uint32_t queued = 0;
    uint32_t running = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
  };
  struct Record {
    std::string name;
    std::string tenant;
    JobState state = JobState::kQueued;
    double submit_seconds = 0.0;
    double admit_seconds = 0.0;
    double finish_seconds = 0.0;
    uint64_t rounds = 0;
    uint32_t partitions_done = 0;  // mirrored from the driver at boundaries
  };

  // One partition boundary; runs with the driver role held, no lock except
  // where noted. Returns whether work may remain.
  bool Step();
  bool HasWorkLocked() const;
  void ApplyCancellations();
  void AdmitPending();
  void RetireActive(size_t index, JobState final_state);
  void ResplitBudget();
  JobReport ReportLocked(JobId id, const Record& rec) const;
  Tenant& TenantLocked(const std::string& name);

  ScanSource& source_;
  SchedulerOptions opts_;
  WallTimer clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool driving_ = false;
  std::deque<PendingJob> pending_;
  std::set<JobId> cancel_requests_;
  std::map<JobId, Record> records_;
  std::map<std::string, Tenant> tenants_;
  SchedulerStats stats_;
  uint64_t fixed_in_use_ = 0;
  // Mirrors active_.size() under mu_ so non-driving threads (PumpOne's
  // waiting branch) can ask "is work left?" without touching the vector the
  // driver mutates lock-free.
  size_t active_count_ = 0;
  JobId next_id_ = 1;

  // Touched only while holding the driver role.
  std::vector<ActiveJob> active_;
  uint32_t cursor_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_SCHEDULER_SCHEDULER_H_
