// JobScheduler: N concurrent algorithm jobs over one graph, one edge scan.
//
// The scheduler owns a ScanSource (the partitioned edge streams, on devices
// or in RAM) and admits jobs — algorithm + parameters + a private vertex
// slab and update stream each — through Submit/Poll/Wait/Cancel. Its core
// mechanism is *scan sharing*: the driving thread walks the partitions in a
// rotating cursor and streams each partition's edge chunks exactly once,
// fanning every loaded chunk out to all active jobs' scatter phases
// (StreamingPhaseDriver's multi-job scatter mode). Per-job shuffles, update
// spills and gathers stay independent, so each job's results are what its
// solo run would produce while the edge-device read volume stays ~flat in
// the number of jobs (bench/fig30_scan_sharing.cc).
//
// Round structure: a job's iteration is one full cycle of the partition
// cursor starting from the partition at which it was admitted — updates are
// unordered within an X-Stream iteration, so the rotation is legal — which
// lets late arrivals join at the next partition boundary instead of waiting
// for a global round, and lets converged jobs retire without stalling the
// rest. Cancellations also take effect at partition boundaries.
//
// Admission control: an optional memory budget gates admission by each
// job's fixed footprint (vertex slabs + stream buffers, FIFO so big jobs
// are not starved), and whatever remains is re-split evenly across the
// pin-capable (hybrid-store) jobs' residency planners every time a job
// enters or leaves — ResidencyPlanner budgets move at runtime.
//
// Threading: Submit/Poll/Wait/Cancel are thread-safe. The rounds themselves
// run on whichever single thread is driving (PumpOne/RunAll/Wait hand the
// driver role off under a mutex); jobs' compute uses the shared ThreadPool.
#ifndef XSTREAM_SCHEDULER_SCHEDULER_H_
#define XSTREAM_SCHEDULER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "scheduler/job.h"
#include "scheduler/scan_source.h"
#include "util/timer.h"

namespace xstream {

using JobId = uint64_t;

/// Scheduler configuration. Thread-safety: plain data, set before
/// constructing the scheduler.
struct SchedulerOptions {
  /// Memory budget split across active jobs (0 = unlimited): fixed job
  /// footprints gate admission; the remainder becomes the pin-capable
  /// jobs' residency budgets (which price everything a pin holds,
  /// including shared-cache edge bytes, so the split bounds total RAM). A
  /// job bigger than the whole budget is still admitted when it is alone
  /// (with a warning) rather than deadlocking the queue.
  uint64_t memory_budget_bytes = 0;
};

/// Aggregate scheduler counters (a snapshot copy; see stats()).
struct SchedulerStats {
  uint64_t partition_scans = 0;    // partition edge streams actually read
  uint64_t scans_saved = 0;        // scatter passes served beyond the first
  uint64_t shared_scan_bytes = 0;  // edge bytes the shared scan read
  uint64_t saved_scan_bytes = 0;   // edge bytes jobs would have re-read naively
  uint64_t rounds_completed = 0;   // per-job iteration boundaries processed
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t budget_resplits = 0;  // admission/retirement pin-budget re-splits
  // Edge bytes the scan source served from its shared pinned-edge cache
  // instead of the edge device (hybrid jobs with pin_edges).
  uint64_t edge_reads_avoided_bytes = 0;
};

/// One job's lifecycle summary (a snapshot copy; see report()).
struct JobReport {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  double queue_seconds = 0.0;  // submit -> admission (or cancellation)
  double run_seconds = 0.0;    // admission -> completion (or so far)
  uint64_t rounds = 0;         // iterations completed under the scheduler
  // Progress through the current round's partition cycle: boundaries the
  // shared cursor has passed since this job's round began, out of the
  // layout's partition count. Resets to 0 as each round wraps; stays at
  // its last value once the job is terminal.
  uint32_t partitions_done = 0;
  uint32_t partitions_total = 0;
};

/// Renders reports as a JSON array (the GET /jobs payload; also consumed by
/// tests). Stable keys: id, name, state, rounds, partitions_done,
/// partitions_total, queue_seconds, run_seconds.
std::string JobReportsToJson(const std::vector<JobReport>& reports);

/// N concurrent algorithm jobs over one shared edge scan.
///
/// Thread-safety: Submit / Poll / Cancel / stats / report / reports are
/// safe from any thread. Wait / RunAll / PumpOne may also be called from
/// any thread, but only one thread at a time holds the internal driver
/// role; the others wait for its partition boundary to land. The
/// constructor and destructor must not race any other member.
class JobScheduler {
 public:
  /// Does not block; the source must outlive the scheduler.
  JobScheduler(ScanSource& source, SchedulerOptions opts = {});
  /// Tear-down abandons any jobs still queued or running — blocks draining
  /// their in-flight I/O. Callers must not be driving or waiting
  /// concurrently.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job; it joins the scan at the next partition boundary with
  /// a budget slot. Thread-safe; never blocks on I/O.
  JobId Submit(std::unique_ptr<ScheduledJob> job);

  /// Current lifecycle state. Thread-safe; never blocks on I/O. Aborts on
  /// an unknown id.
  JobState Poll(JobId id) const;

  /// Requests cancellation; it takes effect at the next driven partition
  /// boundary (queued jobs never start, running jobs abandon their round
  /// there). Poll reports kCancelled once a boundary has processed the
  /// request. Unknown/finished ids are a no-op. Thread-safe; never blocks
  /// on I/O.
  void Cancel(JobId id);

  /// Blocks until the job is terminal, driving rounds (and therefore doing
  /// the jobs' compute and I/O on this thread) whenever no other thread
  /// is. Returns true if the job completed (false = cancelled).
  bool Wait(JobId id);

  /// Drives until no queued or active jobs remain. Blocks for the whole
  /// remaining workload.
  void RunAll();

  /// Drives one partition boundary (admissions, one shared scan, round
  /// finishes, retirements) — blocking on that boundary's compute and I/O;
  /// if another thread is driving, waits for its boundary instead. Returns
  /// whether work may remain. Exposed for step-wise tests and external run
  /// loops.
  bool PumpOne();

  /// Snapshot accessors. Thread-safe; never block on I/O.
  SchedulerStats stats() const;
  JobReport report(JobId id) const;
  std::vector<JobReport> reports() const;

 private:
  struct PendingJob {
    JobId id = 0;
    std::unique_ptr<ScheduledJob> job;
  };
  struct ActiveJob {
    JobId id = 0;
    std::unique_ptr<ScheduledJob> job;
    uint32_t start_partition = 0;  // round boundary: cursor wrap to here
    uint64_t fixed_bytes = 0;
    uint64_t rounds = 0;
  };
  struct Record {
    std::string name;
    JobState state = JobState::kQueued;
    double submit_seconds = 0.0;
    double admit_seconds = 0.0;
    double finish_seconds = 0.0;
    uint64_t rounds = 0;
    uint32_t partitions_done = 0;  // mirrored from the driver at boundaries
  };

  // One partition boundary; runs with the driver role held, no lock except
  // where noted. Returns whether work may remain.
  bool Step();
  bool HasWorkLocked() const;
  void ApplyCancellations();
  void AdmitPending();
  void RetireActive(size_t index, JobState final_state);
  void ResplitBudget();
  JobReport ReportLocked(JobId id, const Record& rec) const;

  ScanSource& source_;
  SchedulerOptions opts_;
  WallTimer clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool driving_ = false;
  std::deque<PendingJob> pending_;
  std::set<JobId> cancel_requests_;
  std::map<JobId, Record> records_;
  SchedulerStats stats_;
  uint64_t fixed_in_use_ = 0;
  // Mirrors active_.size() under mu_ so non-driving threads (PumpOne's
  // waiting branch) can ask "is work left?" without touching the vector the
  // driver mutates lock-free.
  size_t active_count_ = 0;
  JobId next_id_ = 1;

  // Touched only while holding the driver role.
  std::vector<ActiveJob> active_;
  uint32_t cursor_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_SCHEDULER_SCHEDULER_H_
