#include "scheduler/scan_source.h"

#include <algorithm>
#include <utility>

#include "buffers/stream_buffer.h"
#include "storage/stream_io.h"
#include "util/logging.h"

namespace xstream {

DeviceScanSource::DeviceScanSource(ThreadPool& pool, PartitionLayout layout,
                                   const Options& opts, StorageDevice& edge_dev,
                                   const std::string& input_edge_file)
    : pool_(pool),
      layout_(std::move(layout)),
      opts_(opts),
      edge_dev_(edge_dev),
      acct_(opts.file_prefix, layout_.num_partitions()) {
  uint32_t k = layout_.num_partitions();
  edge_files_.resize(k);
  edge_counts_.assign(k, 0);
  dst_edge_counts_.assign(k, 0);
  local_edge_counts_.assign(k, 0);
  for (uint32_t p = 0; p < k; ++p) {
    edge_files_[p] = edge_dev_.Create(opts_.file_prefix + ".edges." + std::to_string(p));
  }
  edge_cache_ = std::make_shared<PinnedEdgeCache>(k, MaxChunkEdges());

  uint64_t capacity = opts_.buffer_bytes > 0
                          ? opts_.buffer_bytes
                          : std::max<uint64_t>(static_cast<uint64_t>(opts_.io_unit_bytes) * k,
                                               sizeof(Edge) * 1024);
  // The shuffle batch must hold at least one reader chunk.
  capacity = std::max<uint64_t>(capacity, opts_.io_unit_bytes);
  StreamBuffer fill(capacity);
  StreamBuffer scratch(capacity);
  EdgeShuffleTallies tallies;
  tallies.src = &edge_counts_;
  tallies.dst = &dst_edge_counts_;
  tallies.local = &local_edge_counts_;
  tallies.collect_dst = opts_.collect_dst_tallies;
  PartitionEdgeFileToParts(pool_, layout_, edge_dev_, input_edge_file, edge_dev_,
                           edge_files_, fill.records<Edge>(), scratch.records<Edge>(),
                           capacity, opts_.io_unit_bytes, tallies);
}

void DeviceScanSource::StreamPartition(uint32_t s,
                                       const std::function<void(const Edge*, uint64_t)>& f) {
  uint64_t chunk_edges = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Edge));
  StreamReader reader(edge_dev_, edge_files_[s], chunk_edges * sizeof(Edge));
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    f(reinterpret_cast<const Edge*>(chunk.data()), chunk.size() / sizeof(Edge));
  }
  acct_.Record(obs::Phase::kScanIo, s, reader.wait_seconds());
}

void DeviceScanSource::ForEachEdgeChunk(uint32_t s,
                                        const std::function<void(const Edge*, uint64_t)>& f) {
  // Pinned partitions are served from (and on their first scan captured
  // into) the shared edge cache, so every attached job's scatter hits one
  // in-RAM copy and the edge device stays idle for them.
  if (edge_cache_->ServeOrCapture(s, f, [&](const PinnedEdgeCache::ChunkConsumer& consumer) {
        StreamPartition(s, consumer);
      }) != PinnedEdgeCache::ServeResult::kMiss) {
    return;
  }
  StreamPartition(s, f);
}

uint64_t DeviceScanSource::PartitionEdgeBytes(uint32_t s) const {
  return edge_counts_[s] * sizeof(Edge);
}

MemoryScanSource::MemoryScanSource(ThreadPool& pool, PartitionLayout layout,
                                   const EdgeList& edges, uint32_t shuffle_fanout)
    : pool_(pool), layout_(std::move(layout)) {
  shared_ = MakeSharedEdgeChunks(pool_, layout_, shuffle_fanout, edges);
}

void MemoryScanSource::ForEachEdgeChunk(uint32_t s,
                                        const std::function<void(const Edge*, uint64_t)>& f) {
  for (const auto& slice : shared_->chunks.slices) {
    const ChunkRef& c = slice[s];
    if (c.count > 0) {
      f(shared_->chunks.data + c.begin, c.count);
    }
  }
}

uint64_t MemoryScanSource::PartitionEdgeBytes(uint32_t s) const {
  uint64_t records = 0;
  for (const auto& slice : shared_->chunks.slices) {
    records += slice[s].count;
  }
  return records * sizeof(Edge);
}

}  // namespace xstream
