#include "scheduler/algo_jobs.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "core/hybrid_store.h"
#include "core/phase_runtime.h"
#include "core/stream_store.h"
#include "util/logging.h"

namespace xstream {

namespace {

uint64_t ParseUint(const std::string& value, const std::string& spec) {
  XS_CHECK(!value.empty() && value.find_first_not_of("0123456789") == std::string::npos)
      << "bad number '" << value << "' in job spec '" << spec << "'";
  return std::stoull(value);
}

// ---- Per-algorithm output extraction --------------------------------------

double ExtractWcc(const WccAlgorithm::VertexState& s) { return static_cast<double>(s.label); }
double ExtractBfs(const BfsAlgorithm::VertexState& s) { return static_cast<double>(s.level); }
double ExtractPageRank(const PageRankAlgorithm::VertexState& s) {
  return static_cast<double>(s.rank);
}
double ExtractSssp(const SsspAlgorithm::VertexState& s) { return static_cast<double>(s.dist); }
double ExtractSpmv(const SpmvAlgorithm::VertexState& s) { return static_cast<double>(s.y); }

std::string SummarizeWcc(const JobOutput& out) {
  uint64_t components = 0;
  for (uint64_t v = 0; v < out.per_vertex.size(); ++v) {
    components += out.per_vertex[v] == static_cast<double>(v) ? 1 : 0;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 " components", components);
  return buf;
}

std::string SummarizeReached(const JobOutput& out) {
  uint64_t reached = 0;
  for (double level : out.per_vertex) {
    reached += (level != static_cast<double>(UINT32_MAX) && std::isfinite(level)) ? 1 : 0;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 " vertices reached", reached);
  return buf;
}

std::string SummarizePageRank(const JobOutput& out) {
  uint64_t best = 0;
  for (uint64_t v = 1; v < out.per_vertex.size(); ++v) {
    if (out.per_vertex[v] > out.per_vertex[best]) {
      best = v;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "top vertex %" PRIu64 " (rank %.3e)", best,
                out.per_vertex.empty() ? 0.0 : out.per_vertex[best]);
  return buf;
}

std::string SummarizeSpmv(const JobOutput& out) {
  double norm = 0;
  for (double y : out.per_vertex) {
    norm += y * y;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "|A*x|_2 = %.4f", std::sqrt(norm));
  return buf;
}

// ---- Generic job assembly -------------------------------------------------

template <EdgeCentricAlgorithm Algo, StreamStoreFor Store>
std::unique_ptr<ScheduledJob> FinishBuild(const JobSpec& spec, Algo algo,
                                          std::unique_ptr<Store> store, uint64_t max_iters,
                                          std::shared_ptr<JobOutput> out,
                                          double (*extract)(const typename Algo::VertexState&),
                                          std::string (*summarize)(const JobOutput&)) {
  using Driver = StreamingPhaseDriver<Algo, Store>;
  typename TypedJob<Algo, Store>::Finalizer finalize;
  if (out != nullptr) {
    finalize = [out, extract, summarize](Driver& driver, Algo&) {
      out->stats = driver.stats();
      out->per_vertex.assign(driver.layout().num_vertices(), 0.0);
      driver.VertexMap([&out, extract](VertexId v, typename Algo::VertexState& s) {
        out->per_vertex[v] = extract(s);
      });
      out->summary = summarize(*out);
    };
  }
  PhaseDriverOptions dopts;
  // Per-job gauge namespace ("job.<name>.iteration", ...) so concurrent
  // jobs' live progress does not collide on the solo "run." prefix.
  dopts.progress_prefix = "job." + spec.name;
  return std::make_unique<TypedJob<Algo, Store>>(spec.name, std::move(algo), std::move(store),
                                                 dopts, max_iters, std::move(finalize));
}

DeviceStoreOptions AttachedStoreOptions(DeviceScanSource& source, const DeviceJobConfig& cfg,
                                        const std::string& prefix) {
  DeviceStoreOptions opts;
  opts.memory_budget_bytes = cfg.memory_budget_bytes;
  opts.io_unit_bytes = cfg.io_unit_bytes;
  opts.allow_vertex_memory_opt = cfg.allow_vertex_memory_opt;
  opts.allow_update_memory_opt = cfg.allow_update_memory_opt;
  opts.absorb_local_updates = cfg.absorb_local_updates;
  opts.async_spill = cfg.async_spill;
  opts.spill_queue_depth = cfg.spill_queue_depth;
  opts.compress_updates = cfg.compress_updates;
  opts.stage_bytes = cfg.stage_bytes;
  opts.file_prefix = prefix;
  source.ConfigureAttachedStore(opts);
  return opts;
}

// The driver's ScatterChunk spills before appending a chunk's worst-case
// updates, which only works if one scan-source chunk fits the job's fill
// buffer — true by construction in solo runs, checked here for the shared
// seam so a mismatched source/job I/O-unit pairing fails at submit time.
template <typename Store>
void CheckChunkFitsBuffer(const DeviceScanSource& source, const Store& store,
                          const JobSpec& spec) {
  XS_CHECK(source.MaxChunkEdges() * sizeof(typename Store::Update) <= store.buffer_bytes())
      << "job '" << spec.name << "': one scan-source chunk ("
      << source.MaxChunkEdges() << " edges) can overflow the job's "
      << store.buffer_bytes() << "-byte update buffer; lower the source "
      << "io_unit_bytes or raise the job's streaming budget/io unit";
}

template <EdgeCentricAlgorithm Algo>
std::unique_ptr<ScheduledJob> MakeDeviceJobFor(
    const JobSpec& spec, Algo algo, uint64_t max_iters,
    double (*extract)(const typename Algo::VertexState&),
    std::string (*summarize)(const JobOutput&), DeviceScanSource& source,
    StorageDevice& update_dev, StorageDevice& vertex_dev, const DeviceJobConfig& cfg,
    const std::string& prefix, std::shared_ptr<JobOutput> out) {
  if (cfg.hybrid) {
    HybridStoreOptions opts;
    static_cast<DeviceStoreOptions&>(opts) = AttachedStoreOptions(source, cfg, prefix);
    opts.pin_budget_bytes = cfg.pin_budget_bytes;
    opts.residency_hysteresis = cfg.residency_hysteresis;
    opts.residency_decay = cfg.residency_decay;
    opts.pin_edges = cfg.pin_edges;
    if (cfg.pin_edges) {
      opts.shared_edge_cache = source.EnsureEdgeCache();
    }
    auto store = std::make_unique<HybridStreamStore<Algo>>(
        source.pool(), source.layout(), opts, source.edge_device(), update_dev, vertex_dev,
        std::string());
    CheckChunkFitsBuffer(source, *store, spec);
    return FinishBuild(spec, std::move(algo), std::move(store), max_iters, std::move(out),
                       extract, summarize);
  }
  auto store = std::make_unique<DeviceStreamStore<Algo>>(
      source.pool(), source.layout(), AttachedStoreOptions(source, cfg, prefix),
      source.edge_device(), update_dev, vertex_dev, std::string());
  CheckChunkFitsBuffer(source, *store, spec);
  return FinishBuild(spec, std::move(algo), std::move(store), max_iters, std::move(out),
                     extract, summarize);
}

template <EdgeCentricAlgorithm Algo>
std::unique_ptr<ScheduledJob> MakeMemoryJobFor(
    const JobSpec& spec, Algo algo, uint64_t max_iters,
    double (*extract)(const typename Algo::VertexState&),
    std::string (*summarize)(const JobOutput&), MemoryScanSource& source,
    std::shared_ptr<JobOutput> out) {
  auto store = std::make_unique<MemoryStreamStore<Algo>>(source.pool(), source.layout(),
                                                         source.shared_edges());
  return FinishBuild(spec, std::move(algo), std::move(store), max_iters, std::move(out),
                     extract, summarize);
}

// Dispatches one spec through `make`, a callable invoked as
// make(algo_instance, max_iters, extract, summarize).
template <typename Make>
std::unique_ptr<ScheduledJob> DispatchAlgo(const JobSpec& spec, uint64_t num_vertices,
                                           Make&& make) {
  if (spec.algo == "wcc") {
    return make(WccAlgorithm{}, spec.max_iterations, &ExtractWcc, &SummarizeWcc);
  }
  if (spec.algo == "bfs") {
    return make(BfsAlgorithm(spec.root), spec.max_iterations, &ExtractBfs,
                &SummarizeReached);
  }
  if (spec.algo == "sssp") {
    return make(SsspAlgorithm(spec.root), spec.max_iterations, &ExtractSssp,
                &SummarizeReached);
  }
  if (spec.algo == "pagerank") {
    uint64_t iters = std::min(spec.max_iterations, spec.iterations + 1);
    return make(PageRankAlgorithm(num_vertices, spec.iterations), iters, &ExtractPageRank,
                &SummarizePageRank);
  }
  if (spec.algo == "spmv") {
    return make(SpmvAlgorithm(spec.seed), uint64_t{1}, &ExtractSpmv, &SummarizeSpmv);
  }
  XS_CHECK(false) << "unknown job algorithm '" << spec.algo << "'";
  return nullptr;
}

}  // namespace

const std::vector<std::string>& KnownJobAlgorithms() {
  static const std::vector<std::string> kKnown = {"wcc", "bfs", "sssp", "pagerank", "spmv"};
  return kKnown;
}

JobSpec ParseJobSpec(const std::string& spec) {
  JobSpec job;
  job.name = spec;
  size_t pos = spec.find(':');
  job.algo = spec.substr(0, pos);
  const auto& known = KnownJobAlgorithms();
  XS_CHECK(std::find(known.begin(), known.end(), job.algo) != known.end())
      << "unknown job algorithm in spec '" << spec << "'";
  while (pos != std::string::npos) {
    size_t next = spec.find(':', pos + 1);
    std::string kv = spec.substr(pos + 1, next == std::string::npos ? next : next - pos - 1);
    size_t eq = kv.find('=');
    XS_CHECK(eq != std::string::npos) << "expected key=value, got '" << kv << "' in job spec '"
                                      << spec << "'";
    std::string key = kv.substr(0, eq);
    std::string value = kv.substr(eq + 1);
    if (key == "src" || key == "root") {
      job.root = static_cast<VertexId>(ParseUint(value, spec));
    } else if (key == "iters" || key == "iterations") {
      job.iterations = ParseUint(value, spec);
    } else if (key == "seed") {
      job.seed = ParseUint(value, spec);
    } else if (key == "max-iters") {
      job.max_iterations = ParseUint(value, spec);
    } else if (key == "name") {
      job.name = value;
    } else {
      XS_CHECK(false) << "unknown key '" << key << "' in job spec '" << spec << "'";
    }
    pos = next;
  }
  return job;
}

std::vector<JobSpec> ParseJobList(const std::string& comma_separated) {
  std::vector<JobSpec> specs;
  size_t begin = 0;
  while (begin <= comma_separated.size()) {
    size_t end = comma_separated.find(',', begin);
    std::string one = comma_separated.substr(
        begin, end == std::string::npos ? end : end - begin);
    if (!one.empty()) {
      specs.push_back(ParseJobSpec(one));
    }
    if (end == std::string::npos) {
      break;
    }
    begin = end + 1;
  }
  XS_CHECK(!specs.empty()) << "empty job list";
  return specs;
}

std::unique_ptr<ScheduledJob> MakeDeviceJob(const JobSpec& spec, DeviceScanSource& source,
                                            StorageDevice& update_dev,
                                            StorageDevice& vertex_dev,
                                            const DeviceJobConfig& config,
                                            const std::string& file_prefix,
                                            std::shared_ptr<JobOutput> out) {
  uint64_t n = source.layout().num_vertices();
  return DispatchAlgo(spec, n, [&](auto algo, uint64_t max_iters, auto extract,
                                   auto summarize) {
    return MakeDeviceJobFor(spec, std::move(algo), max_iters, extract, summarize, source,
                            update_dev, vertex_dev, config, file_prefix, out);
  });
}

std::unique_ptr<ScheduledJob> MakeMemoryJob(const JobSpec& spec, MemoryScanSource& source,
                                            std::shared_ptr<JobOutput> out) {
  uint64_t n = source.layout().num_vertices();
  return DispatchAlgo(spec, n,
                      [&](auto algo, uint64_t max_iters, auto extract, auto summarize) {
                        return MakeMemoryJobFor(spec, std::move(algo), max_iters, extract,
                                                summarize, source, out);
                      });
}

}  // namespace xstream
