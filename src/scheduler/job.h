// ScheduledJob: one algorithm run inside the multi-job scheduler.
//
// The JobScheduler (scheduler.h) is algorithm- and store-agnostic: it drives
// jobs through this type-erased interface, one virtual call per partition
// chunk. TypedJob binds a concrete EdgeCentricAlgorithm and StreamStore pair
// to it by forwarding to the StreamingPhaseDriver's externally drivable
// scatter pieces (core/phase_runtime.h), so a job's per-round behavior —
// spills, absorption, gathers, checkpoints, stats — is byte-for-byte the
// machinery of a solo run; only the edge scan is shared.
#ifndef XSTREAM_SCHEDULER_JOB_H_
#define XSTREAM_SCHEDULER_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/algorithm.h"
#include "core/phase_runtime.h"
#include "core/stats.h"
#include "core/stream_store.h"
#include "graph/types.h"

namespace xstream {

enum class JobState {
  kQueued,     // submitted, waiting for a budget slot / the next boundary
  kRunning,    // admitted; participating in shared scans
  kDone,       // converged (or hit its iteration cap) and finalized
  kCancelled,  // cancelled before completion
};

inline const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

// The scheduler-facing surface of one job. All methods are called by
// whichever single thread is driving the scheduler (never concurrently), in
// the iteration protocol documented on StreamingPhaseDriver.
class ScheduledJob {
 public:
  virtual ~ScheduledJob() = default;

  virtual const std::string& name() const = 0;

  // Bytes this job holds in RAM for its whole life (vertex slabs, stream
  // buffers) — the admission price the scheduler charges against its memory
  // budget.
  virtual uint64_t FixedBytes() const = 0;

  // Pin-capable jobs (hybrid stores) additionally accept a share of the
  // budget left over after every active job's fixed footprint.
  virtual bool CanPin() const = 0;
  virtual void SetPinBudget(uint64_t bytes) = 0;

  // Admission: initialize vertex state. Runs once, before the first round.
  virtual void Activate() = 0;

  // One round = one full cycle over the partitions (any rotation).
  virtual void BeginRound() = 0;
  virtual bool WantsPartition(uint32_t s) const = 0;
  virtual void BeginScatterPartition(uint32_t s) = 0;
  virtual void ScatterChunk(const Edge* es, uint64_t n) = 0;
  virtual void EndScatterPartition() = 0;
  // Tail spill + gather; returns true when the job converged (no updates,
  // algorithm Done, or its iteration cap).
  virtual bool FinishRound() = 0;

  // Cancelled mid-round: abandon the half-done iteration, draining any
  // in-flight I/O so the job can be destroyed safely.
  virtual void Abandon() = 0;

  // Fold device counters and deliver results (runs once, after the last
  // round or not at all for cancelled jobs).
  virtual void Finalize() = 0;

  virtual RunStats& stats() = 0;
};

// Binds Algo x Store to the ScheduledJob interface. The `finalize` callback
// receives the driver (for VertexMap / VertexFold extraction) after the job
// converged.
template <EdgeCentricAlgorithm Algo, StreamStoreFor Store>
class TypedJob final : public ScheduledJob {
 public:
  using Driver = StreamingPhaseDriver<Algo, Store>;
  using Finalizer = std::function<void(Driver&, Algo&)>;

  TypedJob(std::string name, Algo algo, std::unique_ptr<Store> store,
           const PhaseDriverOptions& dopts, uint64_t max_iterations, Finalizer finalize)
      : name_(std::move(name)),
        algo_(std::move(algo)),
        store_(std::move(store)),
        driver_(std::make_unique<Driver>(*store_, dopts)),
        max_iterations_(max_iterations),
        finalize_(std::move(finalize)) {}

  ~TypedJob() override {
    // A job dropped mid-round (cancellation races, scheduler teardown) must
    // not leave I/O referencing the dying store.
    Abandon();
  }

  const std::string& name() const override { return name_; }

  uint64_t FixedBytes() const override { return store_->ResidentFootprintBytes(); }

  bool CanPin() const override {
    return requires(Store& s, uint64_t b) { s.SetPinBudget(b); };
  }

  void SetPinBudget(uint64_t bytes) override {
    if constexpr (requires(Store& s, uint64_t b) { s.SetPinBudget(b); }) {
      store_->SetPinBudget(bytes);
    } else {
      (void)bytes;
    }
  }

  void Activate() override { driver_->InitVertices(algo_); }

  void BeginRound() override {
    driver_->BeginIterationScatter(algo_);
    in_round_ = true;
  }

  bool WantsPartition(uint32_t s) const override { return driver_->PartitionNeedsScatter(s); }

  void BeginScatterPartition(uint32_t s) override { driver_->BeginScatterPartition(s); }

  void ScatterChunk(const Edge* es, uint64_t n) override { driver_->ScatterChunk(algo_, es, n); }

  void EndScatterPartition() override { driver_->EndScatterPartition(algo_); }

  bool FinishRound() override {
    IterationStats iter = driver_->FinishIterationScatter(algo_);
    in_round_ = false;
    if (iter.updates_generated == 0) {
      return true;
    }
    if constexpr (HasDone<Algo>) {
      if (algo_.Done(iter)) {
        return true;
      }
    }
    return driver_->stats().iterations >= max_iterations_;
  }

  void Abandon() override {
    if (in_round_) {
      driver_->CancelIterationScatter();
      in_round_ = false;
    }
  }

  void Finalize() override {
    driver_->FinalizeStats();
    if (finalize_) {
      finalize_(*driver_, algo_);
    }
  }

  RunStats& stats() override { return driver_->stats(); }

  Driver& driver() { return *driver_; }
  Store& store() { return *store_; }

 private:
  std::string name_;
  Algo algo_;
  std::unique_ptr<Store> store_;
  std::unique_ptr<Driver> driver_;
  uint64_t max_iterations_;
  Finalizer finalize_;
  bool in_round_ = false;
};

}  // namespace xstream

#endif  // XSTREAM_SCHEDULER_JOB_H_
