// Named-job factory: turn "pagerank", "bfs:src=5", ... into ScheduledJobs.
//
// Shared by the CLI's --jobs batch mode, the fig30 scan-sharing bench and
// the scheduler tests, so all three agree on job spec syntax, store wiring
// (attach mode against a scan source) and result extraction. Each job's
// output lands in a caller-held JobOutput after the scheduler finalizes it.
#ifndef XSTREAM_SCHEDULER_ALGO_JOBS_H_
#define XSTREAM_SCHEDULER_ALGO_JOBS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"
#include "graph/types.h"
#include "scheduler/job.h"
#include "scheduler/scan_source.h"
#include "storage/device.h"

namespace xstream {

// One parsed job request. Spec syntax: "<algo>[:key=value]...", e.g.
//   pagerank            pagerank:iters=10          bfs:src=42
//   wcc                 sssp:src=7                 spmv:seed=3
struct JobSpec {
  std::string algo;
  std::string name;                       // display name; defaults to the spec
  VertexId root = 0;                      // bfs / sssp
  uint64_t iterations = 5;                // pagerank rank rounds
  uint64_t seed = 0;                      // spmv input vector
  uint64_t max_iterations = UINT64_MAX;   // safety cap
};

// Aborts with a usage message on malformed specs / unknown algorithms.
JobSpec ParseJobSpec(const std::string& spec);
std::vector<JobSpec> ParseJobList(const std::string& comma_separated);
const std::vector<std::string>& KnownJobAlgorithms();

// Where a finalized job delivers its results. per_vertex is indexed by
// original vertex id; the value is the algorithm's principal output (WCC
// label, BFS level, PageRank rank, SSSP distance, SpMV y).
struct JobOutput {
  std::string summary;
  std::vector<double> per_vertex;
  RunStats stats;
};

// Store/driver knobs for jobs built against a device scan source. Mirrors
// the OutOfCoreConfig fields that make sense per job.
struct DeviceJobConfig {
  uint64_t memory_budget_bytes = 64ull << 20;  // §3.4 streaming budget
  size_t io_unit_bytes = 1 << 20;
  bool allow_vertex_memory_opt = true;
  bool allow_update_memory_opt = true;
  bool absorb_local_updates = true;
  bool async_spill = true;
  int spill_queue_depth = 2;
  // Delta+varint compression of the job's spilled update streams.
  bool compress_updates = false;
  // Per-thread staging for the job's single-stage shuffles; 0 = legacy.
  size_t stage_bytes = 0;
  // Hybrid (partially resident) job stores instead of plain device stores;
  // the scheduler's budget re-split then drives their residency planners.
  bool hybrid = false;
  uint64_t pin_budget_bytes = 0;  // initial; a scheduler budget overrides it
  // Hybrid jobs: iterations a partition must win/lose its pin before the
  // incremental re-plan migrates it (0 = legacy full re-plan).
  uint32_t residency_hysteresis = 2;
  // Hybrid jobs: EWMA decay for the planner's observed-update-volume signal
  // (0 = legacy last-iteration-only behaviour).
  double residency_decay = 0.0;
  // Hybrid jobs: cache pinned partitions' edge streams in the scan source's
  // shared PinnedEdgeCache — all jobs hit one RAM copy, priced centrally
  // against the scheduler budget.
  bool pin_edges = false;
};

// Builds a job whose DeviceStreamStore/HybridStreamStore attaches to the
// scan source's edge files; update and vertex files are created on the given
// devices under `file_prefix`.
std::unique_ptr<ScheduledJob> MakeDeviceJob(const JobSpec& spec, DeviceScanSource& source,
                                            StorageDevice& update_dev,
                                            StorageDevice& vertex_dev,
                                            const DeviceJobConfig& config,
                                            const std::string& file_prefix,
                                            std::shared_ptr<JobOutput> out);

// Builds a job whose MemoryStreamStore shares the source's edge chunks.
std::unique_ptr<ScheduledJob> MakeMemoryJob(const JobSpec& spec, MemoryScanSource& source,
                                            std::shared_ptr<JobOutput> out);

}  // namespace xstream

#endif  // XSTREAM_SCHEDULER_ALGO_JOBS_H_
