// Shared edge-stream scan sources for the multi-job scheduler.
//
// X-Stream's one unavoidable cost is the sequential pass over every
// partition's edge stream (paper §2-3): each algorithm iteration streams all
// edges, and the edge list dwarfs vertex and update data on real graphs. N
// concurrent jobs over the same graph therefore should not pay for N scans.
// A ScanSource owns the partitioned edge representation exactly once — the
// per-partition edge files of the device path, or the shuffled in-RAM chunk
// array of the memory path — and the JobScheduler (scheduler.h) streams it
// once per round on behalf of every active job. Per-job stores *attach* to
// the source (DeviceStoreOptions::attach_edge_files, MemoryStreamStore's
// SharedEdgeChunks constructor) instead of partitioning the input
// themselves, so both the setup pass and the per-iteration scans are shared.
#ifndef XSTREAM_SCHEDULER_SCAN_SOURCE_H_
#define XSTREAM_SCHEDULER_SCAN_SOURCE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/stream_store.h"
#include "graph/types.h"
#include "obs/attribution.h"
#include "storage/device.h"
#include "threads/thread_pool.h"

namespace xstream {

// Type-erased provider of per-partition edge streams. One scan = one call to
// ForEachEdgeChunk; the scheduler fans each loaded chunk out to every active
// job's driver.
class ScanSource {
 public:
  virtual ~ScanSource() = default;

  virtual const PartitionLayout& layout() const = 0;
  virtual ThreadPool& pool() = 0;

  // Streams partition s's edges once, in chunks.
  virtual void ForEachEdgeChunk(uint32_t s,
                                const std::function<void(const Edge*, uint64_t)>& f) = 0;

  // Bytes one pass over partition s's edge stream moves (scan accounting).
  virtual uint64_t PartitionEdgeBytes(uint32_t s) const = 0;

  // Upper bound on the edges one ForEachEdgeChunk callback delivers. Job
  // factories check it against their stores' fill buffers so a mismatched
  // source/job I/O-unit pairing fails at submit time, not mid-scatter.
  virtual uint64_t MaxChunkEdges() const = 0;

  // RAM this source currently holds on behalf of its attached jobs beyond
  // the shared edge representation itself — the pinned-edge cache bytes
  // hybrid jobs requested. Introspection only: the bytes are already
  // bounded by the jobs' pin budgets, since every pinning job prices edge
  // bytes into its own plan.
  virtual uint64_t PinnedResidentBytes() const { return 0; }
  // Cumulative edge bytes this source served from its pinned-edge cache
  // instead of the edge device (SchedulerStats::edge_reads_avoided_bytes).
  virtual uint64_t EdgeReadsAvoidedBytes() const { return 0; }
};

// Device-backed scan source: partitions the unordered input file into
// per-partition edge files once — the same setup pass a DeviceStreamStore
// runs, including the residency planner's destination tallies — and streams
// them with the same double-buffered chunked reader.
class DeviceScanSource : public ScanSource {
 public:
  struct Options {
    size_t io_unit_bytes = 1 << 20;
    // Shuffle-batch capacity for the setup pass; 0 = io_unit * partitions
    // (the store's stream-buffer sizing).
    uint64_t buffer_bytes = 0;
    std::string file_prefix = "scan";
    // Tally destination/local edges during setup (one extra PartitionOf per
    // edge) so attached hybrid jobs can price pins without their own pass.
    bool collect_dst_tallies = true;
  };

  DeviceScanSource(ThreadPool& pool, PartitionLayout layout, const Options& opts,
                   StorageDevice& edge_dev, const std::string& input_edge_file);

  const PartitionLayout& layout() const override { return layout_; }
  ThreadPool& pool() override { return pool_; }
  void ForEachEdgeChunk(uint32_t s,
                        const std::function<void(const Edge*, uint64_t)>& f) override;
  uint64_t PartitionEdgeBytes(uint32_t s) const override;
  uint64_t MaxChunkEdges() const override {
    return std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Edge));
  }

  StorageDevice& edge_device() { return edge_dev_; }
  const std::string& file_prefix() const { return opts_.file_prefix; }
  const std::vector<uint64_t>& edge_counts() const { return edge_counts_; }
  const std::vector<uint64_t>& dst_edge_counts() const { return dst_edge_counts_; }
  const std::vector<uint64_t>& local_edge_counts() const { return local_edge_counts_; }

  // The shared pinned-edge cache (created eagerly at construction, so
  // handing it to concurrently built jobs is race-free): attached hybrid
  // jobs with pin_edges on Request()/Release() partitions in it as their
  // residency plans migrate, and the shared scan fills it and serves sealed
  // partitions from RAM — N concurrent jobs hit one copy of the cached
  // edges. Empty (and free) until the first Request; bounded by the
  // requesting jobs' pin budgets (each prices edge bytes into its plan).
  std::shared_ptr<PinnedEdgeCache> EnsureEdgeCache() { return edge_cache_; }

  uint64_t PinnedResidentBytes() const override { return edge_cache_->bytes(); }
  uint64_t EdgeReadsAvoidedBytes() const override { return edge_cache_->served_bytes(); }

  // Fills the attach-mode fields of a job store's options so it opens this
  // source's edge files instead of partitioning its own.
  void ConfigureAttachedStore(DeviceStoreOptions& opts) const {
    opts.attach_edge_files = true;
    opts.edge_file_prefix = opts_.file_prefix;
    opts.shared_dst_tallies = &dst_edge_counts_;
    opts.shared_local_tallies = &local_edge_counts_;
  }

 private:
  ThreadPool& pool_;
  PartitionLayout layout_;
  Options opts_;
  StorageDevice& edge_dev_;
  std::vector<FileId> edge_files_;
  std::vector<uint64_t> edge_counts_;
  std::vector<uint64_t> dst_edge_counts_;
  void StreamPartition(uint32_t s, const std::function<void(const Edge*, uint64_t)>& f);

  std::vector<uint64_t> local_edge_counts_;
  std::shared_ptr<PinnedEdgeCache> edge_cache_;  // never null; empty until requested
  // Shared-scan read stalls, attributed under the source's file prefix
  // ("scan" by default). Job drivers never see this wait — the scheduler
  // owns the scan — so without it the batch diagnosis would call a
  // scan-bound workload compute-bound.
  obs::PhaseAccountant acct_;
};

// In-RAM scan source: the edges are shuffled into per-partition chunks once
// (SharedEdgeChunks); attached MemoryStreamStores reference the same chunk
// array, and the shared scan walks it partition by partition so N jobs make
// one pass through memory instead of N.
class MemoryScanSource : public ScanSource {
 public:
  MemoryScanSource(ThreadPool& pool, PartitionLayout layout, const EdgeList& edges,
                   uint32_t shuffle_fanout = 4);

  const PartitionLayout& layout() const override { return layout_; }
  ThreadPool& pool() override { return pool_; }
  void ForEachEdgeChunk(uint32_t s,
                        const std::function<void(const Edge*, uint64_t)>& f) override;
  uint64_t PartitionEdgeBytes(uint32_t s) const override;
  // A chunk is one slice's span of a partition; never more than the whole
  // edge set, which memory-store update buffers are sized for anyway.
  uint64_t MaxChunkEdges() const override { return std::max<uint64_t>(1, shared_->num_edges); }

  // The shared chunk array a job's MemoryStreamStore attaches to.
  std::shared_ptr<const SharedEdgeChunks> shared_edges() const { return shared_; }

 private:
  ThreadPool& pool_;
  PartitionLayout layout_;
  std::shared_ptr<const SharedEdgeChunks> shared_;
};

}  // namespace xstream

#endif  // XSTREAM_SCHEDULER_SCAN_SOURCE_H_
