#include "storage/sim_device.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace xstream {

namespace {
// Cap the retained timeline so long runs cannot grow without bound; the
// Fig 23 bench drains it every phase.
constexpr size_t kMaxTimelineEvents = 1u << 20;
}  // namespace

DeviceProfile DeviceProfile::Hdd() {
  DeviceProfile p;
  p.name = "hdd";
  // Half of the paper's RAID-0 pair numbers (Fig 11: pair reads 328 MB/s
  // sequential, 0.6 MB/s random 4K; writes 316.3 / 2 MB/s).
  p.seq_read_mbps = 164.0;
  p.seq_write_mbps = 158.0;
  p.read_issue_ms = 0.15;   // sync 4K sequential reads land near 25 MB/s
  p.write_issue_ms = 0.10;
  p.read_seek_ms = 13.0;    // seek + rotational latency, 7200 RPM
  p.write_seek_ms = 3.9;    // write cache absorbs most of the seek (Fig 11)
  return p;
}

DeviceProfile DeviceProfile::Ssd() {
  DeviceProfile p;
  p.name = "ssd";
  // Half of the paper's RAID-0 pair (Fig 11: 667.69 / 576.5 MB/s sequential,
  // 22.5 / 48.6 MB/s random 4K).
  p.seq_read_mbps = 334.0;
  p.seq_write_mbps = 288.0;
  p.read_issue_ms = 0.02;
  p.write_issue_ms = 0.02;
  p.read_seek_ms = 0.33;   // flash read latency; 4K random => ~11 MB/s/device
  p.write_seek_ms = 0.13;  // FTL buffering; 4K random => ~24 MB/s/device
  return p;
}

DeviceProfile DeviceProfile::Instant() {
  DeviceProfile p;
  p.name = "instant";
  p.seq_read_mbps = 1e12;
  p.seq_write_mbps = 1e12;
  return p;
}

SimDevice::SimDevice(std::string name, DeviceProfile profile)
    : StorageDevice(std::move(name)), profile_(std::move(profile)) {}

SimDevice::~SimDevice() = default;

SimDevice::File& SimDevice::GetFile(FileId f) {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.name << " was removed";
  return file;
}

const SimDevice::File& SimDevice::GetFile(FileId f) const {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  const File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.name << " was removed";
  return file;
}

FileId SimDevice::Create(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  if (it != by_name_.end()) {
    File& existing = files_[static_cast<size_t>(it->second)];
    existing.data.clear();
    existing.live = true;
    return it->second;
  }
  FileId id = static_cast<FileId>(files_.size());
  files_.push_back(File{file, {}, true});
  by_name_[file] = id;
  return id;
}

FileId SimDevice::Open(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  XS_CHECK(it != by_name_.end()) << "open of missing file " << file << " on " << name();
  return it->second;
}

bool SimDevice::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.count(file) > 0;
}

uint64_t SimDevice::FileSize(FileId f) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetFile(f).data.size();
}

void SimDevice::Account(FileId f, uint64_t offset, uint64_t bytes, bool is_write) {
  bool contiguous = (head_file_ == f && head_offset_ == offset);
  double ms = is_write ? profile_.write_issue_ms : profile_.read_issue_ms;
  if (!contiguous) {
    ms += is_write ? profile_.write_seek_ms : profile_.read_seek_ms;
    ++stats_.seeks;
  }
  double mbps = is_write ? profile_.seq_write_mbps : profile_.seq_read_mbps;
  double service = ms / 1e3 + static_cast<double>(bytes) / (mbps * 1e6);
  clock_seconds_ += service;
  stats_.busy_seconds += service;
  if (is_write) {
    stats_.bytes_written += bytes;
    ++stats_.write_requests;
  } else {
    stats_.bytes_read += bytes;
    ++stats_.read_requests;
  }
  head_file_ = f;
  head_offset_ = offset + bytes;
  if (timeline_.size() < kMaxTimelineEvents) {
    timeline_.push_back(IoEvent{clock_seconds_, static_cast<uint32_t>(std::min<uint64_t>(
                                                    bytes, UINT32_MAX)),
                                is_write});
  }
}

void SimDevice::Read(FileId f, uint64_t offset, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  XS_CHECK_LE(offset + out.size(), file.data.size())
      << "read past EOF of " << file.name << " on " << name();
  std::memcpy(out.data(), file.data.data() + offset, out.size());
  Account(f, offset, out.size(), /*is_write=*/false);
}

void SimDevice::Write(FileId f, uint64_t offset, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  uint64_t end = offset + data.size();
  if (end > file.data.size()) {
    file.data.resize(end);
  }
  std::memcpy(file.data.data() + offset, data.data(), data.size());
  Account(f, offset, data.size(), /*is_write=*/true);
}

uint64_t SimDevice::Append(FileId f, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  uint64_t offset = file.data.size();
  file.data.insert(file.data.end(), data.begin(), data.end());
  Account(f, offset, data.size(), /*is_write=*/true);
  return offset;
}

void SimDevice::Truncate(FileId f, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  if (new_size < file.data.size()) {
    file.data.resize(new_size);
    file.data.shrink_to_fit();  // actually release blocks, like TRIM
  }
}

void SimDevice::Remove(const std::string& name_str) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name_str);
  if (it == by_name_.end()) {
    return;
  }
  File& file = files_[static_cast<size_t>(it->second)];
  file.data.clear();
  file.data.shrink_to_fit();
  file.live = false;
  by_name_.erase(it);
}

DeviceStats SimDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
  clock_seconds_ = 0.0;
  timeline_.clear();
  head_file_ = kInvalidFile;
  head_offset_ = 0;
}

std::vector<IoEvent> SimDevice::TakeTimeline() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IoEvent> out;
  out.swap(timeline_);
  return out;
}

double SimDevice::ClockSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_seconds_;
}

uint64_t SimDevice::StoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& f : files_) {
    total += f.data.size();
  }
  return total;
}

}  // namespace xstream
