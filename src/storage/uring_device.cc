// io_uring backend. Implemented directly against the kernel UAPI
// (<linux/io_uring.h> + syscalls) rather than liburing so the backend builds
// wherever the kernel headers exist; CMake defines XSTREAM_HAVE_URING when
// they do (see XSTREAM_WITH_URING). The ring protocol follows the io_uring
// man pages: mmap the SQ/CQ rings and SQE array, publish SQEs with a
// release-store of the SQ tail, reap CQEs behind an acquire-load of the CQ
// tail.
#include "storage/uring_device.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

#if defined(XSTREAM_HAVE_URING)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <vector>
#endif

namespace xstream {

namespace {

// Global io.uring.* counters (see docs/observability.md). Handles are looked
// up once and shared by every UringDevice; registry lookups never sit on the
// transfer path.
struct UringMetrics {
  obs::Counter& submit_calls;
  obs::Counter& sqes;
  obs::Counter& bytes;
  obs::Counter& fixed_bytes;
  obs::Counter& fallback_ops;

  static UringMetrics& Get() {
    static UringMetrics m{
        obs::MetricsRegistry::Global().counter("io.uring.submit_calls"),
        obs::MetricsRegistry::Global().counter("io.uring.sqes"),
        obs::MetricsRegistry::Global().counter("io.uring.bytes"),
        obs::MetricsRegistry::Global().counter("io.uring.fixed_bytes"),
        obs::MetricsRegistry::Global().counter("io.uring.fallback_ops"),
    };
    return m;
  }
};

}  // namespace

#if defined(XSTREAM_HAVE_URING)

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int SysUringRegister(int fd, unsigned opcode, const void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr));
}

unsigned LoadAcquire(unsigned* p) { return std::atomic_ref<unsigned>(*p).load(std::memory_order_acquire); }
unsigned LoadRelaxed(unsigned* p) { return std::atomic_ref<unsigned>(*p).load(std::memory_order_relaxed); }
void StoreRelease(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

struct UringDevice::Ring {
  int fd = -1;
  unsigned sq_entries = 0;

  void* sq_mmap = MAP_FAILED;
  size_t sq_bytes = 0;
  void* cq_mmap = MAP_FAILED;  // aliases sq_mmap with IORING_FEAT_SINGLE_MMAP
  size_t cq_bytes = 0;
  bool single_mmap = false;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_bytes = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  AlignedBuffer arena;  // registered_slices * slice_bytes, from the shared pool
  bool registered = false;
  bool warned_errors = false;
  std::mutex mu;  // one in-flight wave per ring

  ~Ring() {
    if (sqes != nullptr) {
      ::munmap(sqes, sqes_bytes);
    }
    if (cq_mmap != MAP_FAILED && !single_mmap) {
      ::munmap(cq_mmap, cq_bytes);
    }
    if (sq_mmap != MAP_FAILED) {
      ::munmap(sq_mmap, sq_bytes);
    }
    if (fd >= 0) {
      ::close(fd);
    }
    if (!arena.empty()) {
      AlignedBufferPool::Shared().Put(std::move(arena));
    }
  }
};

std::unique_ptr<UringDevice::Ring> UringDevice::SetupRing(const UringOptions& opts,
                                                          std::string* err) {
  auto ring = std::make_unique<UringDevice::Ring>();
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  ring->fd = SysUringSetup(opts.sq_entries, &p);
  if (ring->fd < 0) {
    *err = std::string("io_uring_setup: ") + std::strerror(errno);
    return nullptr;
  }
  ring->sq_entries = p.sq_entries;
  ring->sq_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  ring->cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  ring->single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (ring->single_mmap) {
    ring->sq_bytes = ring->cq_bytes = std::max(ring->sq_bytes, ring->cq_bytes);
  }
  ring->sq_mmap = ::mmap(nullptr, ring->sq_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQ_RING);
  if (ring->sq_mmap == MAP_FAILED) {
    *err = std::string("mmap sq ring: ") + std::strerror(errno);
    return nullptr;
  }
  ring->cq_mmap = ring->single_mmap
                      ? ring->sq_mmap
                      : ::mmap(nullptr, ring->cq_bytes, PROT_READ | PROT_WRITE,
                               MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_CQ_RING);
  if (ring->cq_mmap == MAP_FAILED) {
    *err = std::string("mmap cq ring: ") + std::strerror(errno);
    return nullptr;
  }
  ring->sqes_bytes = p.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring->sqes_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    *err = std::string("mmap sqes: ") + std::strerror(errno);
    return nullptr;
  }
  ring->sqes = static_cast<io_uring_sqe*>(sqes);

  auto* sq = static_cast<char*>(ring->sq_mmap);
  ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  ring->sq_mask = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  auto* cq = static_cast<char*>(ring->cq_mmap);
  ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  ring->cq_mask = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  return ring;
}

bool UringDevice::Supported() {
  static const bool ok = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = SysUringSetup(1, &p);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    return true;
  }();
  return ok;
}

UringDevice::UringDevice(std::string name, std::string root, UringOptions opts)
    : PosixDevice(std::move(name), std::move(root), opts.try_direct), opts_(opts) {
  XS_CHECK_GT(opts_.sq_entries, 0u);
  XS_CHECK(opts_.slice_bytes > 0 && opts_.slice_bytes % kIoAlignment == 0)
      << "slice_bytes must be a positive multiple of " << kIoAlignment;
  std::string err;
  ring_ = SetupRing(opts_, &err);
  if (!ring_) {
    XS_LOG(Warning) << "device " << this->name() << ": io_uring unavailable (" << err
                    << "); falling back to synchronous pread/pwrite";
    return;
  }
  if (opts_.registered_slices > 0) {
    ring_->arena =
        AlignedBufferPool::Shared().Get(size_t{opts_.registered_slices} * opts_.slice_bytes);
    std::vector<iovec> iov(opts_.registered_slices);
    for (unsigned i = 0; i < opts_.registered_slices; ++i) {
      iov[i].iov_base = ring_->arena.data() + size_t{i} * opts_.slice_bytes;
      iov[i].iov_len = opts_.slice_bytes;
    }
    if (SysUringRegister(ring_->fd, IORING_REGISTER_BUFFERS, iov.data(),
                         opts_.registered_slices) == 0) {
      ring_->registered = true;
    } else {
      // RLIMIT_MEMLOCK too small, typically. Unregistered ops still go
      // through the ring; only the fixed-buffer fast path is lost.
      XS_LOG(Warning) << "device " << this->name() << ": io_uring buffer registration failed ("
                      << std::strerror(errno) << "); using unregistered transfers";
      AlignedBufferPool::Shared().Put(std::move(ring_->arena));
      ring_->arena = AlignedBuffer{};
    }
  }
}

UringDevice::~UringDevice() = default;

bool UringDevice::buffers_registered() const { return ring_ != nullptr && ring_->registered; }

void UringDevice::Transfer(bool write, int fd, char* buf, size_t len, uint64_t offset) {
  Ring& r = *ring_;
  UringMetrics& m = UringMetrics::Get();
  const size_t slice_bytes = opts_.slice_bytes;
  std::lock_guard<std::mutex> lock(r.mu);
  const unsigned max_wave =
      r.registered ? std::min(r.sq_entries, opts_.registered_slices) : r.sq_entries;
  struct Piece {
    char* user = nullptr;
    size_t len = 0;
    uint64_t off = 0;
    int slot = -1;  // registered-buffer slice index or -1
  };
  std::vector<Piece> wave(max_wave);

  while (len > 0) {
    // Build one wave of up to max_wave slices.
    const unsigned tail = LoadRelaxed(r.sq_tail);  // sole producer, under r.mu
    unsigned n = 0;
    uint64_t wave_bytes = 0;
    while (len > 0 && n < max_wave) {
      const size_t piece_len = std::min(len, slice_bytes);
      const int slot = r.registered ? static_cast<int>(n) : -1;
      std::byte* bounce = slot >= 0 ? r.arena.data() + size_t{static_cast<unsigned>(slot)} * slice_bytes : nullptr;
      if (write && bounce != nullptr) {
        std::memcpy(bounce, buf, piece_len);
      }
      const unsigned idx = (tail + n) & r.sq_mask;
      io_uring_sqe* sqe = &r.sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->fd = fd;
      sqe->off = offset;
      sqe->len = static_cast<unsigned>(piece_len);
      sqe->user_data = n;
      if (bounce != nullptr) {
        sqe->opcode = write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
        sqe->addr = reinterpret_cast<uint64_t>(bounce);
        sqe->buf_index = static_cast<uint16_t>(slot);
      } else {
        sqe->opcode = write ? IORING_OP_WRITE : IORING_OP_READ;
        sqe->addr = reinterpret_cast<uint64_t>(buf);
      }
      r.sq_array[idx] = idx;
      wave[n] = Piece{buf, piece_len, offset, slot};
      buf += piece_len;
      offset += piece_len;
      len -= piece_len;
      wave_bytes += piece_len;
      ++n;
    }
    StoreRelease(r.sq_tail, tail + n);

    // Submit the wave and wait for all of its completions.
    unsigned submitted = 0;
    while (submitted < n) {
      int ret = SysUringEnter(r.fd, n - submitted, n, IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        XS_CHECK_EQ(errno, EINTR) << "io_uring_enter failed: " << std::strerror(errno);
        continue;
      }
      submitted += static_cast<unsigned>(ret);
    }
    m.submit_calls.Add(1);
    m.sqes.Add(n);
    m.bytes.Add(wave_bytes);

    // Reap exactly the wave's completions; any short or failed piece is
    // finished with the portable pread/pwrite loop so callers always get
    // full transfers.
    unsigned done = 0;
    while (done < n) {
      unsigned chead = LoadRelaxed(r.cq_head);
      const unsigned ctail = LoadAcquire(r.cq_tail);
      if (chead == ctail) {
        int ret = SysUringEnter(r.fd, 0, n - done, IORING_ENTER_GETEVENTS);
        XS_CHECK(ret >= 0 || errno == EINTR)
            << "io_uring_enter (getevents) failed: " << std::strerror(errno);
        continue;
      }
      for (; chead != ctail && done < n; ++chead, ++done) {
        const io_uring_cqe& cqe = r.cqes[chead & r.cq_mask];
        XS_CHECK_LT(cqe.user_data, n);
        const Piece& pc = wave[cqe.user_data];
        const int32_t res = cqe.res;
        if (res < 0 && !r.warned_errors) {
          r.warned_errors = true;
          XS_LOG(Warning) << "device " << name() << ": io_uring op failed ("
                          << std::strerror(-res) << "); completing via pread/pwrite";
        }
        const size_t ok = res > 0 ? std::min(static_cast<size_t>(res), pc.len) : 0;
        if (!write && pc.slot >= 0 && ok > 0) {
          std::memcpy(pc.user, r.arena.data() + size_t{static_cast<unsigned>(pc.slot)} * slice_bytes, ok);
        }
        if (ok < pc.len) {
          m.fallback_ops.Add(1);
          if (write) {
            PosixDevice::RawWrite(fd, pc.user + ok, pc.len - ok, pc.off + ok);
          } else {
            PosixDevice::RawRead(fd, pc.user + ok, pc.len - ok, pc.off + ok);
          }
        }
        if (pc.slot >= 0) {
          m.fixed_bytes.Add(pc.len);
        }
      }
      StoreRelease(r.cq_head, chead);
    }
  }
}

void UringDevice::RawRead(int fd, void* buf, size_t len, uint64_t offset) {
  if (ring_ == nullptr || len == 0) {
    PosixDevice::RawRead(fd, buf, len, offset);
    return;
  }
  Transfer(/*write=*/false, fd, static_cast<char*>(buf), len, offset);
}

void UringDevice::RawWrite(int fd, const void* buf, size_t len, uint64_t offset) {
  if (ring_ == nullptr || len == 0) {
    PosixDevice::RawWrite(fd, buf, len, offset);
    return;
  }
  // The write path never stores through the pointer: slices are memcpy'd
  // into the bounce arena or handed to the kernel read-only.
  Transfer(/*write=*/true, fd, const_cast<char*>(static_cast<const char*>(buf)), len, offset);
}

#else  // !XSTREAM_HAVE_URING

// Portable build: UringDevice degrades to PosixDevice with a loud notice, so
// --io-backend=uring remains a valid (if synchronous) configuration
// everywhere and call sites never need #ifdefs.
struct UringDevice::Ring {};

bool UringDevice::Supported() { return false; }

UringDevice::UringDevice(std::string name, std::string root, UringOptions opts)
    : PosixDevice(std::move(name), std::move(root), opts.try_direct), opts_(opts) {
  XS_LOG(Warning) << "device " << this->name()
                  << ": built without io_uring support (XSTREAM_WITH_URING=OFF or missing "
                     "<linux/io_uring.h>); using synchronous pread/pwrite";
}

UringDevice::~UringDevice() = default;

bool UringDevice::buffers_registered() const { return false; }

void UringDevice::Transfer(bool, int, char*, size_t, uint64_t) {}

void UringDevice::RawRead(int fd, void* buf, size_t len, uint64_t offset) {
  PosixDevice::RawRead(fd, buf, len, offset);
}

void UringDevice::RawWrite(int fd, const void* buf, size_t len, uint64_t offset) {
  PosixDevice::RawWrite(fd, buf, len, offset);
}

#endif  // XSTREAM_HAVE_URING

void UringDevice::PublishExtraStats(obs::MetricGroup& group) {
  PosixDevice::PublishExtraStats(group);
  group.gauge("uring_active").Set(ring_active() ? 1.0 : 0.0);
  group.gauge("uring_fixed_buffers")
      .Set(buffers_registered() ? static_cast<double>(opts_.registered_slices) : 0.0);
}

}  // namespace xstream
