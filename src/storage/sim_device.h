// SimDevice: a storage device model with a virtual clock.
//
// Purpose (see DESIGN.md §2.5): the paper's out-of-core evaluation ran on
// 2×200 GB PCIe SSDs and 2×3 TB magnetic disks. We reproduce the evaluation's
// *shapes* — sequential ≫ random with a medium-dependent gap, RAID-0 ≈ 2×
// one disk, SSD ≈ 2× HDD — on any host by servicing requests against a
// device model instead of physical media. Data is held in memory; service
// time is computed per request and accumulated on the device's clock.
//
// Service-time model (per request of s bytes):
//     t = [seek if non-contiguous] + issue_overhead + s / seq_bandwidth
// A request is contiguous when it starts exactly where the previous request
// on this *device* ended (same file, consecutive offset) — interleaving
// streams on one device costs seeks, which is exactly the effect the paper
// exploits with independent disks and large I/O units.
//
// Profiles are calibrated so that a RAID-0 pair of SimDevices matches the
// paper's Fig 11 table (HDD: 328 MB/s seq read vs 0.6 MB/s random read;
// SSD: 667 vs 22.5) and the Fig 9 request-size sweep saturates near 16 MB.
#ifndef XSTREAM_STORAGE_SIM_DEVICE_H_
#define XSTREAM_STORAGE_SIM_DEVICE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/device.h"

namespace xstream {

struct DeviceProfile {
  std::string name;
  double seq_read_mbps = 0.0;   // asymptotic sequential read bandwidth
  double seq_write_mbps = 0.0;  // asymptotic sequential write bandwidth
  double read_issue_ms = 0.0;   // fixed per-request issue overhead
  double write_issue_ms = 0.0;
  double read_seek_ms = 0.0;  // added when the request is non-contiguous
  double write_seek_ms = 0.0;

  // Single 7200 RPM magnetic disk (half of the paper's RAID-0 pair).
  static DeviceProfile Hdd();
  // Single PCIe SSD (half of the paper's RAID-0 pair).
  static DeviceProfile Ssd();
  // Zero-latency, infinite-bandwidth device for functional tests.
  static DeviceProfile Instant();
};

class SimDevice : public StorageDevice {
 public:
  SimDevice(std::string name, DeviceProfile profile);
  ~SimDevice() override;

  FileId Create(const std::string& file) override;
  FileId Open(const std::string& file) override;
  bool Exists(const std::string& file) const override;
  uint64_t FileSize(FileId f) const override;
  void Read(FileId f, uint64_t offset, std::span<std::byte> out) override;
  void Write(FileId f, uint64_t offset, std::span<const std::byte> data) override;
  uint64_t Append(FileId f, std::span<const std::byte> data) override;
  void Truncate(FileId f, uint64_t new_size) override;
  void Remove(const std::string& file) override;

  DeviceStats stats() const override;
  void ResetStats() override;
  std::vector<IoEvent> TakeTimeline() override;

  const DeviceProfile& profile() const { return profile_; }

  // Current virtual clock (total busy seconds since construction/reset).
  double ClockSeconds() const;

  // Total bytes currently stored across files (capacity accounting).
  uint64_t StoredBytes() const;

 private:
  struct File {
    std::string name;
    std::vector<std::byte> data;
    bool live = true;
  };

  // Advances the clock by the service time of a request and records stats.
  // Caller holds mu_.
  void Account(FileId f, uint64_t offset, uint64_t bytes, bool is_write);

  File& GetFile(FileId f);
  const File& GetFile(FileId f) const;

  DeviceProfile profile_;

  mutable std::mutex mu_;
  std::vector<File> files_;
  std::map<std::string, FileId> by_name_;

  // Head position: last file touched and the offset just past the last
  // request, for contiguity detection.
  FileId head_file_ = kInvalidFile;
  uint64_t head_offset_ = 0;

  double clock_seconds_ = 0.0;
  DeviceStats stats_;
  std::vector<IoEvent> timeline_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_SIM_DEVICE_H_
