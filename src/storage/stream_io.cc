#include "storage/stream_io.h"

#include <algorithm>
#include <cstring>

#include "storage/io_executor.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

StreamReader::StreamReader(StorageDevice& dev, FileId file, size_t chunk_bytes)
    : dev_(dev), file_(file), chunk_bytes_(chunk_bytes), file_size_(dev.FileSize(file)) {
  XS_CHECK_GT(chunk_bytes_, 0u);
  buffers_[0] = AlignedBuffer(chunk_bytes_);
  buffers_[1] = AlignedBuffer(chunk_bytes_);
}

StreamReader::~StreamReader() {
  for (auto& p : pending_) {
    if (p.valid()) {
      p.wait();
    }
  }
}

void StreamReader::Issue(int buf) {
  size_t len = static_cast<size_t>(
      std::min<uint64_t>(chunk_bytes_, file_size_ - std::min(file_size_, next_offset_)));
  lengths_[buf] = len;
  if (len == 0) {
    return;
  }
  uint64_t offset = next_offset_;
  next_offset_ += len;
  std::span<std::byte> target(buffers_[buf].data(), len);
  pending_[buf] = dev_.executor().Submit([this, offset, target] { dev_.Read(file_, offset, target); });
}

std::span<const std::byte> StreamReader::Next() {
  if (!started_) {
    started_ = true;
    Issue(0);
    Issue(1);
    current_ = 0;
  } else {
    // The chunk just consumed becomes the prefetch target.
    Issue(current_);
    current_ ^= 1;
  }
  if (lengths_[current_] == 0) {
    return {};
  }
  if (pending_[current_].valid()) {
    WallTimer timer;
    pending_[current_].wait();
    wait_seconds_ += timer.Seconds();
  }
  return {buffers_[current_].data(), lengths_[current_]};
}

StreamWriter::StreamWriter(StorageDevice& dev, FileId file, size_t buffer_bytes)
    : dev_(dev), file_(file), buffer_bytes_(buffer_bytes) {
  XS_CHECK_GT(buffer_bytes_, 0u);
  buffers_[0] = AlignedBuffer(buffer_bytes_);
  buffers_[1] = AlignedBuffer(buffer_bytes_);
}

StreamWriter::~StreamWriter() {
  Finish();
  if (error_ != nullptr) {
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      XS_LOG(Error) << "StreamWriter destroyed with unreported write error: " << e.what()
                    << " (call Close() to propagate write failures)";
    } catch (...) {
      XS_LOG(Error) << "StreamWriter destroyed with unreported write error"
                    << " (call Close() to propagate write failures)";
    }
  }
}

void StreamWriter::Append(std::span<const std::byte> data) {
  XS_CHECK(!finished_);
  while (!data.empty()) {
    size_t room = buffer_bytes_ - used_;
    size_t take = std::min(room, data.size());
    std::memcpy(buffers_[current_].data() + used_, data.data(), take);
    used_ += take;
    data = data.subspan(take);
    if (used_ == buffer_bytes_) {
      FlushCurrent();
    }
  }
}

void StreamWriter::Drain(std::future<void>& pending) {
  if (!pending.valid()) {
    return;
  }
  try {
    pending.get();
  } catch (...) {
    if (error_ == nullptr) {
      error_ = std::current_exception();
    }
  }
}

void StreamWriter::FlushCurrent() {
  if (used_ == 0) {
    return;
  }
  std::span<const std::byte> payload(buffers_[current_].data(), used_);
  pending_[current_] = dev_.executor().Submit([this, payload] { dev_.Append(file_, payload); });
  bytes_written_ += used_;
  used_ = 0;
  current_ ^= 1;
  // Before reusing the other buffer, its previous write must be complete.
  Drain(pending_[current_]);
}

void StreamWriter::Finish() {
  if (finished_) {
    return;
  }
  FlushCurrent();
  for (auto& p : pending_) {
    Drain(p);
  }
  finished_ = true;
}

void StreamWriter::Close() {
  Finish();
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace xstream
