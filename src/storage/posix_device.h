// PosixDevice: StorageDevice backed by real files in a directory.
//
// Used by tests (functional correctness against a real filesystem), by the
// examples, and for on-host out-of-core runs. Supports optional O_DIRECT
// (paper §3.3) with automatic fallback to buffered I/O for requests that are
// not sector-aligned (the engine's bulk chunk traffic is aligned; only
// per-partition tails fall back).
#ifndef XSTREAM_STORAGE_POSIX_DEVICE_H_
#define XSTREAM_STORAGE_POSIX_DEVICE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/device.h"

namespace xstream {

class PosixDevice : public StorageDevice {
 public:
  // `root` must be an existing writable directory; files live directly in it.
  // With try_direct=true, an O_DIRECT descriptor is opened alongside the
  // buffered one and used for aligned requests when the filesystem allows.
  PosixDevice(std::string name, std::string root, bool try_direct = false);
  ~PosixDevice() override;

  FileId Create(const std::string& file) override;
  FileId Open(const std::string& file) override;
  bool Exists(const std::string& file) const override;
  uint64_t FileSize(FileId f) const override;
  void Read(FileId f, uint64_t offset, std::span<std::byte> out) override;
  void Write(FileId f, uint64_t offset, std::span<const std::byte> data) override;
  uint64_t Append(FileId f, std::span<const std::byte> data) override;
  void Truncate(FileId f, uint64_t new_size) override;
  void Remove(const std::string& file) override;

  DeviceStats stats() const override;
  void ResetStats() override;

  const std::string& root() const { return root_; }
  bool direct_io_active() const { return direct_supported_; }

 protected:
  // Raw transfer seam: every Read/Write/Append lands here with the chosen
  // descriptor (buffered or O_DIRECT) after size bookkeeping, outside the
  // device mutex. The base implementation loops pread/pwrite until complete;
  // UringDevice overrides these to push the same transfers through an
  // io_uring submission queue.
  virtual void RawRead(int fd, void* buf, size_t len, uint64_t offset);
  virtual void RawWrite(int fd, const void* buf, size_t len, uint64_t offset);

  // Publishes direct_supported (1 when an O_DIRECT descriptor ever opened)
  // so --stats-json records which I/O path a run actually used.
  void PublishExtraStats(obs::MetricGroup& group) override;

 private:
  struct File {
    std::string path;
    int fd = -1;         // buffered descriptor
    int direct_fd = -1;  // O_DIRECT descriptor or -1
    uint64_t size = 0;
    bool live = false;
  };

  FileId OpenInternal(const std::string& file, bool truncate);
  File& GetFile(FileId f);
  const File& GetFile(FileId f) const;

  std::string root_;
  bool try_direct_;
  bool direct_supported_ = false;
  bool direct_warned_ = false;

  mutable std::mutex mu_;
  std::vector<File> files_;
  std::map<std::string, FileId> by_name_;
  DeviceStats stats_;
};

// Creates a fresh scratch directory under $TMPDIR (or /tmp) and removes it,
// recursively, on destruction. Test/bench helper.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& prefix);
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_POSIX_DEVICE_H_
