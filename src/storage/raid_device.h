// RaidDevice: software RAID-0 over child devices.
//
// The paper's testbed arranges SSD and HDD pairs "into a software RAID-0
// configuration" with a 512 KB stripe unit (§5.1): requests larger than the
// stripe unit are split across the pair, which is why the Fig 9 bandwidth
// curves jump past 1 MB request sizes and why RAID-0 halves X-Stream's
// runtime in Fig 15. Children advance their own (virtual) clocks, so striped
// halves are serviced in parallel.
#ifndef XSTREAM_STORAGE_RAID_DEVICE_H_
#define XSTREAM_STORAGE_RAID_DEVICE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/device.h"

namespace xstream {

class RaidDevice : public StorageDevice {
 public:
  // `children` are non-owning and must outlive the RaidDevice.
  RaidDevice(std::string name, std::vector<StorageDevice*> children,
             uint64_t stripe_bytes = kRaidStripeBytes);
  ~RaidDevice() override;

  FileId Create(const std::string& file) override;
  FileId Open(const std::string& file) override;
  bool Exists(const std::string& file) const override;
  uint64_t FileSize(FileId f) const override;
  void Read(FileId f, uint64_t offset, std::span<std::byte> out) override;
  void Write(FileId f, uint64_t offset, std::span<const std::byte> data) override;
  uint64_t Append(FileId f, std::span<const std::byte> data) override;
  void Truncate(FileId f, uint64_t new_size) override;
  void Remove(const std::string& file) override;

  // Aggregates children: bytes/requests are summed; busy_seconds is the max
  // over children (they run in parallel).
  DeviceStats stats() const override;
  void ResetStats() override;

  const std::vector<StorageDevice*>& children() const { return children_; }
  uint64_t stripe_bytes() const { return stripe_bytes_; }

 private:
  struct File {
    std::string name;
    std::vector<FileId> child_ids;
    uint64_t size = 0;
    bool live = true;
  };

  // Walks the stripes overlapping [offset, offset+len) and invokes
  // op(child_index, child_file, child_offset, span_begin, span_len).
  template <typename Op>
  void ForEachStripe(const File& file, uint64_t offset, uint64_t len, Op&& op) const;

  File& GetFile(FileId f);
  const File& GetFile(FileId f) const;

  std::vector<StorageDevice*> children_;
  uint64_t stripe_bytes_;

  mutable std::mutex mu_;
  std::vector<File> files_;
  std::map<std::string, FileId> by_name_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_RAID_DEVICE_H_
