#include "storage/raid_device.h"

#include <algorithm>

#include "util/logging.h"

namespace xstream {

RaidDevice::RaidDevice(std::string name, std::vector<StorageDevice*> children,
                       uint64_t stripe_bytes)
    : StorageDevice(std::move(name)), children_(std::move(children)), stripe_bytes_(stripe_bytes) {
  XS_CHECK_GE(children_.size(), 1u);
  XS_CHECK_GT(stripe_bytes_, 0u);
}

RaidDevice::~RaidDevice() = default;

RaidDevice::File& RaidDevice::GetFile(FileId f) {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.name << " was removed";
  return file;
}

const RaidDevice::File& RaidDevice::GetFile(FileId f) const {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  const File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.name << " was removed";
  return file;
}

template <typename Op>
void RaidDevice::ForEachStripe(const File& file, uint64_t offset, uint64_t len, Op&& op) const {
  uint64_t consumed = 0;
  size_t n = children_.size();
  while (consumed < len) {
    uint64_t pos = offset + consumed;
    uint64_t stripe = pos / stripe_bytes_;
    uint64_t within = pos % stripe_bytes_;
    size_t child = static_cast<size_t>(stripe % n);
    uint64_t child_offset = (stripe / n) * stripe_bytes_ + within;
    uint64_t run = std::min(len - consumed, stripe_bytes_ - within);
    op(child, file.child_ids[child], child_offset, consumed, run);
    consumed += run;
  }
}

FileId RaidDevice::Create(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  if (it != by_name_.end()) {
    File& existing = files_[static_cast<size_t>(it->second)];
    for (size_t c = 0; c < children_.size(); ++c) {
      existing.child_ids[c] = children_[c]->Create(file);
    }
    existing.size = 0;
    existing.live = true;
    return it->second;
  }
  File f;
  f.name = file;
  for (auto* child : children_) {
    f.child_ids.push_back(child->Create(file));
  }
  FileId id = static_cast<FileId>(files_.size());
  files_.push_back(std::move(f));
  by_name_[file] = id;
  return id;
}

FileId RaidDevice::Open(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  XS_CHECK(it != by_name_.end()) << "open of missing file " << file << " on " << name();
  return it->second;
}

bool RaidDevice::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.count(file) > 0;
}

uint64_t RaidDevice::FileSize(FileId f) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetFile(f).size;
}

void RaidDevice::Read(FileId f, uint64_t offset, std::span<std::byte> out) {
  File* file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = &GetFile(f);
    XS_CHECK_LE(offset + out.size(), file->size) << "read past EOF of " << file->name;
  }
  ForEachStripe(*file, offset, out.size(),
                [&](size_t child, FileId cf, uint64_t child_offset, uint64_t begin, uint64_t run) {
                  children_[child]->Read(cf, child_offset, out.subspan(begin, run));
                });
}

void RaidDevice::Write(FileId f, uint64_t offset, std::span<const std::byte> data) {
  File* file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = &GetFile(f);
    file->size = std::max(file->size, offset + data.size());
  }
  ForEachStripe(*file, offset, data.size(),
                [&](size_t child, FileId cf, uint64_t child_offset, uint64_t begin, uint64_t run) {
                  children_[child]->Write(cf, child_offset, data.subspan(begin, run));
                });
}

uint64_t RaidDevice::Append(FileId f, std::span<const std::byte> data) {
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset = GetFile(f).size;
  }
  Write(f, offset, data);
  return offset;
}

void RaidDevice::Truncate(FileId f, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  if (new_size >= file.size) {
    return;
  }
  file.size = new_size;
  // Per-child size: count whole stripes plus the tail landing on each child.
  size_t n = children_.size();
  for (size_t c = 0; c < n; ++c) {
    uint64_t child_size = 0;
    uint64_t full_stripes = new_size / stripe_bytes_;
    uint64_t tail = new_size % stripe_bytes_;
    // Child c owns stripes с, c+n, c+2n, ...: it has ceil((full_stripes - c)/n)
    // complete stripes, plus the partial stripe if it lands on c.
    if (full_stripes > c) {
      child_size = ((full_stripes - c - 1) / n + 1) * stripe_bytes_;
    }
    if (tail > 0 && full_stripes % n == c) {
      child_size = (full_stripes / n) * stripe_bytes_ + tail;
    }
    children_[c]->Truncate(file.child_ids[c], child_size);
  }
}

void RaidDevice::Remove(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  if (it == by_name_.end()) {
    return;
  }
  files_[static_cast<size_t>(it->second)].live = false;
  by_name_.erase(it);
  for (auto* child : children_) {
    child->Remove(file);
  }
}

DeviceStats RaidDevice::stats() const {
  DeviceStats agg;
  for (auto* child : children_) {
    DeviceStats s = child->stats();
    agg.bytes_read += s.bytes_read;
    agg.bytes_written += s.bytes_written;
    agg.read_requests += s.read_requests;
    agg.write_requests += s.write_requests;
    agg.seeks += s.seeks;
    agg.busy_seconds = std::max(agg.busy_seconds, s.busy_seconds);
  }
  return agg;
}

void RaidDevice::ResetStats() {
  for (auto* child : children_) {
    child->ResetStats();
  }
}

}  // namespace xstream
