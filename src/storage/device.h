// StorageDevice: the "Slow Storage" abstraction (paper §2.1).
//
// The out-of-core engine stores one edge file, one update file and one vertex
// file per streaming partition (§3) on a device. Devices implement named
// flat files with offset reads/writes, appends, and truncation. Truncating a
// stream when it is destroyed models the TRIM behaviour the paper relies on
// for SSDs (§3.3).
//
// Implementations:
//  * PosixDevice — real files in a directory (optionally O_DIRECT).
//  * SimDevice   — byte store with a virtual clock calibrated to the paper's
//                  HDD/SSD measurements; reproduces sequential-vs-random and
//                  device-scaling shapes deterministically on any host.
//  * RaidDevice  — RAID-0 striping over children (512 KB stripe unit, §5.1).
#ifndef XSTREAM_STORAGE_DEVICE_H_
#define XSTREAM_STORAGE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace xstream {

namespace obs {
class MetricGroup;
}  // namespace obs

using FileId = int32_t;
inline constexpr FileId kInvalidFile = -1;

// RAID-0 stripe unit used by the paper's testbed (§5.1).
inline constexpr uint64_t kRaidStripeBytes = 512 * 1024;

struct DeviceStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
  uint64_t seeks = 0;  // non-contiguous requests (SimDevice only)
  // Device busy time: virtual service time for SimDevice, syscall wall time
  // for PosixDevice. The engine's simulated runtime is
  // max(compute wall time, max over devices of busy_seconds).
  double busy_seconds = 0.0;
};

// One I/O request, timestamped on the device clock; used to reconstruct the
// Fig 23 bandwidth timeline.
struct IoEvent {
  double time = 0.0;  // seconds on the device clock at request completion
  uint32_t bytes = 0;
  bool write = false;
};

class IoExecutor;

class StorageDevice {
 public:
  explicit StorageDevice(std::string name);
  virtual ~StorageDevice();

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  const std::string& name() const { return name_; }

  // Creates (or truncates to empty) a file and returns its id.
  virtual FileId Create(const std::string& file) = 0;
  // Opens an existing file. Aborts if missing: stream files are always
  // created by the engine before being read.
  virtual FileId Open(const std::string& file) = 0;
  virtual bool Exists(const std::string& file) const = 0;
  virtual uint64_t FileSize(FileId f) const = 0;

  virtual void Read(FileId f, uint64_t offset, std::span<std::byte> out) = 0;
  virtual void Write(FileId f, uint64_t offset, std::span<const std::byte> data) = 0;
  // Appends at the end; returns the offset the data landed at.
  virtual uint64_t Append(FileId f, std::span<const std::byte> data) = 0;
  // Truncation frees blocks; on SSDs this turns into TRIM (§3.3).
  virtual void Truncate(FileId f, uint64_t new_size) = 0;
  virtual void Remove(const std::string& file) = 0;

  virtual DeviceStats stats() const = 0;
  virtual void ResetStats() = 0;

  // Mirrors stats() into the metrics registry as the monotonic counters
  // "device.<name>.{read_bytes,written_bytes,read_requests,write_requests,
  // seeks}" and the gauge "device.<name>.busy_seconds". Snapshot-on-read:
  // cheap enough to call at any reporting point (--stats-json, bench JSON
  // emission); per-request accounting stays in DeviceStats, the layer that
  // already computes the numbers.
  void PublishStats();

  // Drains and returns the request timeline accumulated since the last call.
  virtual std::vector<IoEvent> TakeTimeline() { return {}; }

  // The dedicated I/O thread for this device (paper §3.3: "spawns one thread
  // for each disk"). Created lazily; shared by all streams on the device.
  IoExecutor& executor();

 protected:
  // Backend-specific additions to PublishStats under the same
  // "device.<name>." prefix — e.g. PosixDevice's direct_supported gauge.
  // Default publishes nothing.
  virtual void PublishExtraStats(obs::MetricGroup& group);

 private:
  std::string name_;
  std::unique_ptr<IoExecutor> executor_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_DEVICE_H_
