#include "storage/device.h"

#include "storage/io_executor.h"

namespace xstream {

StorageDevice::StorageDevice(std::string name) : name_(std::move(name)) {}

StorageDevice::~StorageDevice() = default;

IoExecutor& StorageDevice::executor() {
  if (!executor_) {
    executor_ = std::make_unique<IoExecutor>();
  }
  return *executor_;
}

}  // namespace xstream
