#include "storage/device.h"

#include "obs/metrics.h"
#include "storage/io_executor.h"

namespace xstream {

StorageDevice::StorageDevice(std::string name) : name_(std::move(name)) {}

StorageDevice::~StorageDevice() = default;

IoExecutor& StorageDevice::executor() {
  if (!executor_) {
    executor_ = std::make_unique<IoExecutor>();
  }
  return *executor_;
}

void StorageDevice::PublishStats() {
  DeviceStats s = stats();
  obs::MetricGroup g(obs::MetricsRegistry::Global(), "device." + name_);
  auto publish = [&g](const char* metric, uint64_t v) {
    obs::Counter& c = g.counter(metric);
    uint64_t cur = c.Value();
    if (v > cur) {
      c.Add(v - cur);  // monotonic: republishing adds the delta since last time
    }
  };
  publish("read_bytes", s.bytes_read);
  publish("written_bytes", s.bytes_written);
  publish("read_requests", s.read_requests);
  publish("write_requests", s.write_requests);
  publish("seeks", s.seeks);
  g.gauge("busy_seconds").Set(s.busy_seconds);
  PublishExtraStats(g);
}

void StorageDevice::PublishExtraStats(obs::MetricGroup&) {}

}  // namespace xstream
