#include "storage/posix_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/aligned.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

namespace {

bool IsAligned(uint64_t offset, size_t len, const void* ptr) {
  return offset % kIoAlignment == 0 && len % kIoAlignment == 0 &&
         reinterpret_cast<uintptr_t>(ptr) % kIoAlignment == 0;
}

void FullPread(int fd, void* buf, size_t len, uint64_t offset) {
  auto* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
    XS_CHECK_GT(n, 0) << "pread failed: " << std::strerror(errno);
    p += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

void FullPwrite(int fd, const void* buf, size_t len, uint64_t offset) {
  const auto* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    XS_CHECK_GT(n, 0) << "pwrite failed: " << std::strerror(errno);
    p += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

}  // namespace

void PosixDevice::RawRead(int fd, void* buf, size_t len, uint64_t offset) {
  FullPread(fd, buf, len, offset);
}

void PosixDevice::RawWrite(int fd, const void* buf, size_t len, uint64_t offset) {
  FullPwrite(fd, buf, len, offset);
}

void PosixDevice::PublishExtraStats(obs::MetricGroup& group) {
  bool supported;
  {
    std::lock_guard<std::mutex> lock(mu_);
    supported = direct_supported_;
  }
  group.gauge("direct_supported").Set(supported ? 1.0 : 0.0);
}

PosixDevice::PosixDevice(std::string name, std::string root, bool try_direct)
    : StorageDevice(std::move(name)), root_(std::move(root)), try_direct_(try_direct) {
  XS_CHECK(std::filesystem::is_directory(root_)) << root_ << " is not a directory";
}

PosixDevice::~PosixDevice() {
  for (auto& f : files_) {
    if (f.fd >= 0) {
      ::close(f.fd);
    }
    if (f.direct_fd >= 0) {
      ::close(f.direct_fd);
    }
  }
}

PosixDevice::File& PosixDevice::GetFile(FileId f) {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.path << " was removed";
  return file;
}

const PosixDevice::File& PosixDevice::GetFile(FileId f) const {
  XS_CHECK(f >= 0 && static_cast<size_t>(f) < files_.size()) << "bad file id " << f;
  const File& file = files_[static_cast<size_t>(f)];
  XS_CHECK(file.live) << "file " << file.path << " was removed";
  return file;
}

FileId PosixDevice::OpenInternal(const std::string& file, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  if (it != by_name_.end()) {
    File& existing = files_[static_cast<size_t>(it->second)];
    if (truncate) {
      XS_CHECK_EQ(::ftruncate(existing.fd, 0), 0) << std::strerror(errno);
      existing.size = 0;
    }
    existing.live = true;
    return it->second;
  }

  std::string path = root_ + "/" + file;
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  XS_CHECK_GE(fd, 0) << "open(" << path << ") failed: " << std::strerror(errno);

  int direct_fd = -1;
  if (try_direct_) {
    direct_fd = ::open(path.c_str(), O_RDWR | O_DIRECT);
    if (direct_fd >= 0) {
      direct_supported_ = true;
    } else if (!direct_warned_) {
      // tmpfs and overlayfs reject O_DIRECT; fall back loudly (once), so a
      // benchmark run on the wrong filesystem doesn't silently measure the
      // page cache. direct_supported in PublishStats records the outcome.
      direct_warned_ = true;
      XS_LOG(Warning) << "device " << name() << ": O_DIRECT open of " << path
                      << " failed (" << std::strerror(errno)
                      << "); falling back to buffered I/O";
    }
  }

  off_t size = ::lseek(fd, 0, SEEK_END);
  XS_CHECK_GE(size, 0) << std::strerror(errno);

  FileId id = static_cast<FileId>(files_.size());
  files_.push_back(File{path, fd, direct_fd, static_cast<uint64_t>(size), true});
  by_name_[file] = id;
  return id;
}

FileId PosixDevice::Create(const std::string& file) { return OpenInternal(file, true); }

FileId PosixDevice::Open(const std::string& file) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (by_name_.count(file) == 0) {
      XS_CHECK(std::filesystem::exists(root_ + "/" + file))
          << "open of missing file " << file << " on " << name();
    }
  }
  return OpenInternal(file, false);
}

bool PosixDevice::Exists(const std::string& file) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(file);
    if (it != by_name_.end()) {
      return files_[static_cast<size_t>(it->second)].live;
    }
  }
  return std::filesystem::exists(root_ + "/" + file);
}

uint64_t PosixDevice::FileSize(FileId f) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetFile(f).size;
}

void PosixDevice::Read(FileId f, uint64_t offset, std::span<std::byte> out) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    File& file = GetFile(f);
    XS_CHECK_LE(offset + out.size(), file.size) << "read past EOF of " << file.path;
    fd = (file.direct_fd >= 0 && IsAligned(offset, out.size(), out.data())) ? file.direct_fd
                                                                            : file.fd;
  }
  WallTimer timer;
  RawRead(fd, out.data(), out.size(), offset);
  double elapsed = timer.Seconds();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_read += out.size();
  ++stats_.read_requests;
  stats_.busy_seconds += elapsed;
}

void PosixDevice::Write(FileId f, uint64_t offset, std::span<const std::byte> data) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    File& file = GetFile(f);
    fd = (file.direct_fd >= 0 && IsAligned(offset, data.size(), data.data())) ? file.direct_fd
                                                                              : file.fd;
    file.size = std::max(file.size, offset + data.size());
  }
  WallTimer timer;
  RawWrite(fd, data.data(), data.size(), offset);
  double elapsed = timer.Seconds();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += data.size();
  ++stats_.write_requests;
  stats_.busy_seconds += elapsed;
}

uint64_t PosixDevice::Append(FileId f, std::span<const std::byte> data) {
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset = GetFile(f).size;
  }
  Write(f, offset, data);
  return offset;
}

void PosixDevice::Truncate(FileId f, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = GetFile(f);
  if (new_size < file.size) {
    XS_CHECK_EQ(::ftruncate(file.fd, static_cast<off_t>(new_size)), 0) << std::strerror(errno);
    file.size = new_size;
  }
}

void PosixDevice::Remove(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(file);
  if (it != by_name_.end()) {
    File& f = files_[static_cast<size_t>(it->second)];
    if (f.fd >= 0) {
      ::close(f.fd);
      f.fd = -1;
    }
    if (f.direct_fd >= 0) {
      ::close(f.direct_fd);
      f.direct_fd = -1;
    }
    f.live = false;
    by_name_.erase(it);
  }
  std::filesystem::remove(root_ + "/" + file);
}

DeviceStats PosixDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PosixDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

ScratchDir::ScratchDir(const std::string& prefix) {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp != nullptr ? tmp : "/tmp";
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string candidate =
        base + "/" + prefix + "." + std::to_string(::getpid()) + "." + std::to_string(attempt);
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  XS_CHECK(false) << "could not create scratch directory under " << base;
}

ScratchDir::~ScratchDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

}  // namespace xstream
