// Streaming readers/writers with prefetch distance 1 (paper §3.3).
//
// "As soon as a read into one input stream buffer is completed, we start the
// next read into a second input stream buffer. Similarly, the writes to disk
// of the chunks in one output buffer are overlapped with computing the
// updates of the scatter phase into another output buffer. ... We found this
// prefetch distance of one, both on input and output, sufficient to keep the
// disks 100% busy."
//
// StreamReader returns consecutive chunks of a file, double-buffered, with
// the next chunk's read issued on the device's I/O thread before the current
// one is consumed. StreamWriter appends through two alternating buffers.
#ifndef XSTREAM_STORAGE_STREAM_IO_H_
#define XSTREAM_STORAGE_STREAM_IO_H_

#include <future>
#include <span>

#include "storage/device.h"
#include "util/aligned.h"

namespace xstream {

class StreamReader {
 public:
  // Streams `file` on `dev` from the beginning in `chunk_bytes` units.
  StreamReader(StorageDevice& dev, FileId file, size_t chunk_bytes);
  ~StreamReader();

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  // Returns the next chunk (empty at EOF). The span is valid until the next
  // call to Next().
  std::span<const std::byte> Next();

  uint64_t file_size() const { return file_size_; }

  // Wall time Next() spent blocked on reads the prefetch had not finished —
  // the read-side analogue of the spill path's spill_wait_seconds.
  double wait_seconds() const { return wait_seconds_; }

 private:
  void Issue(int buf);

  StorageDevice& dev_;
  FileId file_;
  size_t chunk_bytes_;
  uint64_t file_size_;
  uint64_t next_offset_ = 0;

  AlignedBuffer buffers_[2];
  size_t lengths_[2] = {0, 0};
  std::future<void> pending_[2];
  int current_ = 0;
  bool started_ = false;
  double wait_seconds_ = 0.0;
};

class StreamWriter {
 public:
  // Appends to `file` on `dev`, buffering up to `buffer_bytes` per flush.
  StreamWriter(StorageDevice& dev, FileId file, size_t buffer_bytes);
  // Finishes quietly: any write error that was never observed via Close()
  // is logged and swallowed (destructors must not throw). Durable paths —
  // engine spills, checkpoints, edge-file writes — must call Close() first.
  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  // Copies `data` into the current buffer, flushing asynchronously whenever
  // the buffer fills.
  void Append(std::span<const std::byte> data);

  // Appends a single fixed-size record (convenience for record streams).
  template <typename T>
  void AppendRecord(const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(std::span<const std::byte>(reinterpret_cast<const std::byte*>(&record), sizeof(T)));
  }

  // Flushes any buffered bytes and waits for all writes to complete. Errors
  // raised on the I/O thread are retained, not raised here (legacy quiet
  // path); call Close() to surface them.
  void Finish();

  // Finish() plus error propagation: rethrows the first exception any
  // asynchronous write raised on the device's I/O thread. Idempotent; after
  // a throwing Close() the retained error is cleared.
  void Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void FlushCurrent();
  // Waits for a pending write, retaining (not throwing) its error.
  void Drain(std::future<void>& pending);

  StorageDevice& dev_;
  FileId file_;
  size_t buffer_bytes_;
  AlignedBuffer buffers_[2];
  size_t used_ = 0;
  std::future<void> pending_[2];
  int current_ = 0;
  uint64_t bytes_written_ = 0;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_STREAM_IO_H_
