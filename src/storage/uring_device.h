// UringDevice: io_uring + O_DIRECT storage backend (--io-backend=uring).
//
// The paper's thesis is that the engine should saturate sequential bandwidth
// (§3.3 "Disk I/O"); synchronous pread/pwrite on the IoExecutor thread caps
// a device at one in-flight request. UringDevice keeps the whole PosixDevice
// surface — file table, O_DIRECT descriptor selection, stats — and replaces
// only the raw transfer seam: each Read/Write is sliced into slice_bytes
// pieces submitted as a wave of up to sq_entries SQEs on one io_uring, so a
// multi-megabyte stream chunk keeps several requests queued at the device.
//
// Buffers: a slice-sized arena acquired from AlignedBufferPool::Shared() is
// registered with the kernel once (IORING_REGISTER_BUFFERS); transfers bounce
// through the registered slices with READ_FIXED/WRITE_FIXED, which skips the
// per-request pin/unpin of user pages. Oversized waves fall back to plain
// IORING_OP_READ/WRITE straight into caller memory.
//
// Degradation is always loud and always safe: if io_uring_setup fails
// (old kernel, seccomp sandbox, RLIMIT_MEMLOCK) the constructor logs one
// warning and the device behaves exactly like PosixDevice; if an individual
// SQE completes short or with an error the remainder is finished with the
// base pread/pwrite loop. Supported() lets callers and tests probe first.
//
// Built only when <linux/io_uring.h> is available (XSTREAM_HAVE_URING, see
// CMakeLists.txt); otherwise the class still compiles as a pure PosixDevice
// alias with Supported() == false, so call sites never need #ifdefs.
#ifndef XSTREAM_STORAGE_URING_DEVICE_H_
#define XSTREAM_STORAGE_URING_DEVICE_H_

#include <memory>
#include <string>

#include "storage/posix_device.h"
#include "util/aligned.h"

namespace xstream {

struct UringOptions {
  // Submission queue depth (rounded up to a power of two by the kernel).
  unsigned sq_entries = 64;
  // Per-SQE transfer unit; requests larger than this are split into a wave
  // of concurrent slices. Must be a multiple of kIoAlignment.
  size_t slice_bytes = 256 * 1024;
  // Registered fixed-buffer slices (arena = registered_slices * slice_bytes,
  // from AlignedBufferPool::Shared()); 0 disables buffer registration.
  unsigned registered_slices = 8;
  // Open O_DIRECT descriptors alongside buffered ones (same as the
  // PosixDevice try_direct flag).
  bool try_direct = true;
};

class UringDevice : public PosixDevice {
 public:
  UringDevice(std::string name, std::string root, UringOptions opts = {});
  ~UringDevice() override;

  // True when this build has io_uring support compiled in AND the running
  // kernel/sandbox accepts io_uring_setup (probed once per process).
  static bool Supported();

  // True when this instance is actually driving an io_uring (false after a
  // loud constructor fallback).
  bool ring_active() const { return ring_ != nullptr; }
  bool buffers_registered() const;
  const UringOptions& uring_options() const { return opts_; }

 protected:
  void RawRead(int fd, void* buf, size_t len, uint64_t offset) override;
  void RawWrite(int fd, const void* buf, size_t len, uint64_t offset) override;
  void PublishExtraStats(obs::MetricGroup& group) override;

 private:
  struct Ring;  // raw SQ/CQ mappings; defined in uring_device.cc only

  // Creates and mmaps the ring; returns nullptr (and fills *err) on failure.
  static std::unique_ptr<Ring> SetupRing(const UringOptions& opts, std::string* err);

  // Slices [buf, buf+len) into SQE waves; finishes any short or failed
  // piece via the PosixDevice loop. Returns immediately to the base
  // implementation when the ring is inactive.
  void Transfer(bool write, int fd, char* buf, size_t len, uint64_t offset);

  UringOptions opts_;
  std::unique_ptr<Ring> ring_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_URING_DEVICE_H_
