#include "storage/io_executor.h"

namespace xstream {

IoExecutor::IoExecutor() : thread_([this] { Loop(); }) {}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::future<void> IoExecutor::Submit(std::function<void()> op) {
  std::packaged_task<void()> task(std::move(op));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void IoExecutor::Loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace xstream
