#include "storage/io_executor.h"

#include <chrono>

namespace xstream {

IoExecutor::IoExecutor()
    : ops_counter_(&obs::MetricsRegistry::Global().counter("io.requests")),
      depth_gauge_(&obs::MetricsRegistry::Global().gauge("io.queue_depth")),
      latency_hist_(&obs::MetricsRegistry::Global().histogram("io.submit_to_complete_us")),
      thread_([this] { Loop(); }) {}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::future<void> IoExecutor::Submit(std::function<void()> op) {
  // The completion count must be visible before the request's future
  // resolves (waiters read in_flight() right after .get()), so it is bumped
  // by a guard inside the task, not by the loop after task() returns.
  auto submitted_at = std::chrono::steady_clock::now();
  std::packaged_task<void()> task([this, submitted_at, op = std::move(op)] {
    struct Guard {
      IoExecutor* ex;
      std::chrono::steady_clock::time_point t0;
      ~Guard() {
        ex->completed_.fetch_add(1, std::memory_order_relaxed);
        ex->depth_gauge_->Set(static_cast<double>(ex->in_flight()));
        ex->latency_hist_->Observe(
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
                .count());
      }
    } guard{this, submitted_at};
    op();
  });
  std::future<void> future = task.get_future();
  // Count the submission before the task becomes runnable, or a fast I/O
  // thread could complete it first and in_flight() would transiently
  // underflow.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ops_counter_->Add();
  depth_gauge_->Set(static_cast<double>(in_flight()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void IoExecutor::Loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace xstream
