#include "storage/io_executor.h"

namespace xstream {

IoExecutor::IoExecutor() : thread_([this] { Loop(); }) {}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::future<void> IoExecutor::Submit(std::function<void()> op) {
  // The completion count must be visible before the request's future
  // resolves (waiters read in_flight() right after .get()), so it is bumped
  // by a guard inside the task, not by the loop after task() returns.
  std::packaged_task<void()> task([this, op = std::move(op)] {
    struct Guard {
      std::atomic<uint64_t>& count;
      ~Guard() { count.fetch_add(1, std::memory_order_relaxed); }
    } guard{completed_};
    op();
  });
  std::future<void> future = task.get_future();
  // Count the submission before the task becomes runnable, or a fast I/O
  // thread could complete it first and in_flight() would transiently
  // underflow.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void IoExecutor::Loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace xstream
