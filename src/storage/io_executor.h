// Single dedicated I/O thread with a FIFO request queue.
//
// The paper (§3.3): "X-Stream does asynchronous I/O using dedicated I/O
// threads and spawns one thread for each disk." StreamReader/StreamWriter
// submit chunk-sized requests here and overlap them with computation.
#ifndef XSTREAM_STORAGE_IO_EXECUTOR_H_
#define XSTREAM_STORAGE_IO_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

namespace xstream {

class IoExecutor {
 public:
  IoExecutor();
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Enqueues `op` and returns a future that completes when it has run on the
  // I/O thread. Requests run strictly in FIFO order (one disk head).
  std::future<void> Submit(std::function<void()> op);

 private:
  void Loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_IO_EXECUTOR_H_
