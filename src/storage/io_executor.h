// Single dedicated I/O thread with a FIFO request queue.
//
// The paper (§3.3): "X-Stream does asynchronous I/O using dedicated I/O
// threads and spawns one thread for each disk." StreamReader/StreamWriter
// submit chunk-sized requests here and overlap them with computation.
#ifndef XSTREAM_STORAGE_IO_EXECUTOR_H_
#define XSTREAM_STORAGE_IO_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace xstream {

class IoExecutor {
 public:
  IoExecutor();
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Enqueues `op` and returns a future that completes when it has run on the
  // I/O thread. Requests run strictly in FIFO order (one disk head).
  std::future<void> Submit(std::function<void()> op);

  // Requests submitted / finished since construction. The difference is the
  // in-flight depth: >0 means submitters are successfully overlapping
  // compute with this device's I/O (the §3.3 pipeline at work).
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t in_flight() const { return submitted() - completed(); }

 private:
  void Loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  // Registry handles (obs/metrics.h), shared by every executor: request
  // count, current aggregate in-flight depth, and the submit-to-complete
  // latency distribution (queueing included — the §3.3 overlap signal).
  obs::Counter* ops_counter_;
  obs::Gauge* depth_gauge_;
  obs::Histogram* latency_hist_;
  std::thread thread_;
};

}  // namespace xstream

#endif  // XSTREAM_STORAGE_IO_EXECUTOR_H_
