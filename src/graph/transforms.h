// Edge-list transforms: cleanup utilities for real-world inputs.
//
// X-Stream consumes unordered edge lists verbatim, but published datasets
// often need light preparation — duplicate edges, self loops, or sparse
// vertex id spaces (which would waste partition space, since partitions
// cover contiguous id ranges). Each transform is a single pass or sort,
// deliberately outside the engines: they remain pure streaming consumers.
#ifndef XSTREAM_GRAPH_TRANSFORMS_H_
#define XSTREAM_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/types.h"

namespace xstream {

// Drops e.src == e.dst records.
EdgeList RemoveSelfLoops(const EdgeList& edges);

// Keeps the first record of each (src, dst) pair (weights of dropped
// duplicates are discarded). O(E log E).
EdgeList DeduplicateEdges(const EdgeList& edges);

// Result of CompactVertexIds: the relabeled edges plus the old->new map.
struct CompactedGraph {
  EdgeList edges;
  uint64_t num_vertices = 0;               // new id space: [0, num_vertices)
  std::vector<VertexId> old_to_new;        // kNoVertex for unused old ids
  std::vector<VertexId> new_to_old;
};

// Renumbers vertices densely in order of first appearance, eliminating
// holes in the id space (partition ranges then carry no dead vertices).
CompactedGraph CompactVertexIds(const EdgeList& edges);

// Applies a seeded random permutation to the vertex id space (edges keep
// their order and weights). Strips incidental locality from generator or
// crawl numbering — the standard control when comparing partitioning
// strategies, so none of them free-rides on how ids were handed out.
EdgeList PermuteVertexIds(const EdgeList& edges, uint64_t num_vertices, uint64_t seed);

// Per-vertex out/in-degrees in one pass.
struct DegreeSummary {
  std::vector<uint32_t> out_degree;
  std::vector<uint32_t> in_degree;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  double average_degree = 0.0;
};
DegreeSummary ComputeDegrees(const EdgeList& edges, uint64_t num_vertices);

}  // namespace xstream

#endif  // XSTREAM_GRAPH_TRANSFORMS_H_
