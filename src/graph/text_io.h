// Text edge-list I/O (SNAP / Graph500 style).
//
// The paper's real-world datasets ship as whitespace-separated text edge
// lists ("src dst" or "src dst weight" per line, '#'/'%' comments). These
// helpers convert between that format and the packed binary edge files the
// engines stream, so downstream users can feed published datasets directly.
#ifndef XSTREAM_GRAPH_TEXT_IO_H_
#define XSTREAM_GRAPH_TEXT_IO_H_

#include <string>

#include "graph/types.h"

namespace xstream {

struct TextReadOptions {
  // Assign SplitMix64-derived weights in [0,1) when the file has none
  // (the paper: "For inputs without an edge weight, we added a random edge
  // weight"). If false, weightless edges get weight 1.0.
  bool random_weights_if_missing = true;
  uint64_t weight_seed = 99;
  // Treat every line as an undirected edge: emit both directions.
  bool symmetrize = false;
};

// Parses a text edge list from a filesystem path. Lines: "src dst" or
// "src dst weight"; blank lines and lines starting with '#', '%' or '//'
// are skipped. Aborts with a line number on malformed input.
EdgeList ReadTextEdgeList(const std::string& path, const TextReadOptions& options = {});

// Writes "src dst weight" lines.
void WriteTextEdgeList(const std::string& path, const EdgeList& edges);

// Parses edges from an in-memory string (testing & embedding).
EdgeList ParseTextEdges(const std::string& text, const TextReadOptions& options = {});

}  // namespace xstream

#endif  // XSTREAM_GRAPH_TEXT_IO_H_
