// Sequential reference implementations used as correctness oracles.
//
// Every X-Stream algorithm is validated against these straightforward
// adjacency-list implementations in the test suite and (optionally) in the
// benches. They are deliberately simple and unoptimized.
#ifndef XSTREAM_GRAPH_REFERENCE_H_
#define XSTREAM_GRAPH_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace xstream {

// Adjacency-list view of an edge list (out-edges; in-edges on demand).
class ReferenceGraph {
 public:
  ReferenceGraph(const EdgeList& edges, uint64_t num_vertices);

  uint64_t num_vertices() const { return adj_.size(); }
  const std::vector<std::pair<VertexId, float>>& OutEdges(VertexId v) const {
    return adj_[v];
  }

 private:
  std::vector<std::vector<std::pair<VertexId, float>>> adj_;
};

// BFS levels from `root`; unreachable = UINT32_MAX.
std::vector<uint32_t> ReferenceBfsLevels(const ReferenceGraph& g, VertexId root);

// Weakly connected component labels: min vertex id in each component,
// treating every edge as undirected.
std::vector<VertexId> ReferenceWcc(const EdgeList& edges, uint64_t num_vertices);

// Bellman-Ford shortest path distances from `root` (weights >= 0 here);
// unreachable = +inf.
std::vector<double> ReferenceSssp(const ReferenceGraph& g, VertexId root);

// PageRank with damping 0.85, `iterations` synchronous rounds, initial rank
// 1/N, dangling mass dropped (matching the scatter-gather formulation).
std::vector<double> ReferencePageRank(const ReferenceGraph& g, int iterations);

// y = A * x where A is the weighted adjacency matrix (y[dst] += w * x[src]).
std::vector<double> ReferenceSpmv(const ReferenceGraph& g, const std::vector<double>& x);

// Total weight of a minimum spanning forest (Kruskal). Edge list must hold
// both directions; each undirected edge is counted once by (src < dst).
double ReferenceMstWeight(const EdgeList& edges, uint64_t num_vertices);

// Strongly connected component labels (iterative Tarjan). Labels are
// arbitrary but consistent: same label iff same SCC.
std::vector<uint32_t> ReferenceScc(const ReferenceGraph& g);

// Checks that `in_set` is a maximal independent set of the undirected graph.
bool IsMaximalIndependentSet(const EdgeList& edges, uint64_t num_vertices,
                             const std::vector<uint8_t>& in_set);

// Conductance of the cut defined by `side` (volume = sum of degrees):
// cross_edges / min(vol(S), vol(V\S)). Edge list holds both directions.
double ReferenceConductance(const EdgeList& edges, uint64_t num_vertices,
                            const std::vector<uint8_t>& side);

// Exact neighborhood function N(t) (pairs reachable within t hops in the
// undirected graph) for small graphs, and the number of steps to converge.
uint32_t ReferenceDiameterSteps(const EdgeList& edges, uint64_t num_vertices);

// k-core membership by iterative peeling (edge list holds both directions;
// degree = incident record count at the vertex).
std::vector<uint8_t> ReferenceKCore(const EdgeList& edges, uint64_t num_vertices, uint32_t k);

}  // namespace xstream

#endif  // XSTREAM_GRAPH_REFERENCE_H_
