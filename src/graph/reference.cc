#include "graph/reference.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace xstream {

ReferenceGraph::ReferenceGraph(const EdgeList& edges, uint64_t num_vertices)
    : adj_(num_vertices) {
  for (const Edge& e : edges) {
    XS_CHECK_LT(e.src, num_vertices);
    XS_CHECK_LT(e.dst, num_vertices);
    adj_[e.src].emplace_back(e.dst, e.weight);
  }
}

std::vector<uint32_t> ReferenceBfsLevels(const ReferenceGraph& g, VertexId root) {
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  std::deque<VertexId> queue;
  level[root] = 0;
  queue.push_back(root);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (const auto& [u, w] : g.OutEdges(v)) {
      if (level[u] == UINT32_MAX) {
        level[u] = level[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return level;
}

namespace {

// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(uint64_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return false;
    }
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<VertexId> ReferenceWcc(const EdgeList& edges, uint64_t num_vertices) {
  UnionFind uf(num_vertices);
  for (const Edge& e : edges) {
    uf.Union(e.src, e.dst);
  }
  std::vector<VertexId> label(num_vertices);
  // Union-by-min makes the root the minimum id of its component.
  for (uint64_t v = 0; v < num_vertices; ++v) {
    label[v] = uf.Find(static_cast<uint32_t>(v));
  }
  return label;
}

std::vector<double> ReferenceSssp(const ReferenceGraph& g, VertexId root) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_vertices(), kInf);
  dist[root] = 0.0;
  // Bellman-Ford with a worklist; weights are non-negative so it terminates.
  std::deque<VertexId> queue{root};
  std::vector<uint8_t> queued(g.num_vertices(), 0);
  queued[root] = 1;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    queued[v] = 0;
    for (const auto& [u, w] : g.OutEdges(v)) {
      double candidate = dist[v] + static_cast<double>(w);
      if (candidate < dist[u]) {
        dist[u] = candidate;
        if (!queued[u]) {
          queued[u] = 1;
          queue.push_back(u);
        }
      }
    }
  }
  return dist;
}

std::vector<double> ReferencePageRank(const ReferenceGraph& g, int iterations) {
  uint64_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  std::vector<uint64_t> out_degree(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    out_degree[v] = g.OutEdges(v).size();
  }
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (uint64_t v = 0; v < n; ++v) {
      if (out_degree[v] == 0) {
        continue;
      }
      double share = rank[v] / static_cast<double>(out_degree[v]);
      for (const auto& [u, w] : g.OutEdges(v)) {
        next[u] += share;
      }
    }
    for (uint64_t v = 0; v < n; ++v) {
      next[v] = (1.0 - 0.85) / static_cast<double>(n) + 0.85 * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> ReferenceSpmv(const ReferenceGraph& g, const std::vector<double>& x) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (uint64_t v = 0; v < g.num_vertices(); ++v) {
    for (const auto& [u, w] : g.OutEdges(v)) {
      y[u] += static_cast<double>(w) * x[v];
    }
  }
  return y;
}

double ReferenceMstWeight(const EdgeList& edges, uint64_t num_vertices) {
  // Kruskal over the undirected edges (keep src < dst representatives).
  std::vector<Edge> undirected;
  undirected.reserve(edges.size() / 2);
  for (const Edge& e : edges) {
    if (e.src < e.dst) {
      undirected.push_back(e);
    }
  }
  std::sort(undirected.begin(), undirected.end(), [](const Edge& a, const Edge& b) {
    if (a.weight != b.weight) {
      return a.weight < b.weight;
    }
    // Deterministic tie-break on endpoints so the MST is unique.
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });
  UnionFind uf(num_vertices);
  double total = 0.0;
  for (const Edge& e : undirected) {
    if (uf.Union(e.src, e.dst)) {
      total += static_cast<double>(e.weight);
    }
  }
  return total;
}

std::vector<uint32_t> ReferenceScc(const ReferenceGraph& g) {
  // Iterative Tarjan.
  uint64_t n = g.num_vertices();
  constexpr uint32_t kUnset = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnset);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> scc(n, kUnset);
  std::vector<VertexId> stack;
  uint32_t next_index = 0;
  uint32_t next_scc = 0;

  struct Frame {
    VertexId v;
    size_t edge = 0;
  };
  std::vector<Frame> call;

  for (uint64_t start = 0; start < n; ++start) {
    if (index[start] != kUnset) {
      continue;
    }
    call.push_back({static_cast<VertexId>(start)});
    while (!call.empty()) {
      Frame& frame = call.back();
      VertexId v = frame.v;
      if (frame.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      const auto& out = g.OutEdges(v);
      while (frame.edge < out.size()) {
        VertexId u = out[frame.edge].first;
        ++frame.edge;
        if (index[u] == kUnset) {
          call.push_back({u});
          descended = true;
          break;
        }
        if (on_stack[u]) {
          lowlink[v] = std::min(lowlink[v], index[u]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        for (;;) {
          VertexId u = stack.back();
          stack.pop_back();
          on_stack[u] = 0;
          scc[u] = next_scc;
          if (u == v) {
            break;
          }
        }
        ++next_scc;
      }
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }
  return scc;
}

bool IsMaximalIndependentSet(const EdgeList& edges, uint64_t num_vertices,
                             const std::vector<uint8_t>& in_set) {
  // Independence: no edge inside the set.
  for (const Edge& e : edges) {
    if (e.src != e.dst && in_set[e.src] && in_set[e.dst]) {
      return false;
    }
  }
  // Maximality: every vertex outside the set has a neighbor inside it.
  std::vector<uint8_t> has_in_neighbor(num_vertices, 0);
  for (const Edge& e : edges) {
    if (in_set[e.src]) {
      has_in_neighbor[e.dst] = 1;
    }
    if (in_set[e.dst]) {
      has_in_neighbor[e.src] = 1;
    }
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (!in_set[v] && !has_in_neighbor[v]) {
      return false;
    }
  }
  return true;
}

double ReferenceConductance(const EdgeList& edges, uint64_t num_vertices,
                            const std::vector<uint8_t>& side) {
  uint64_t cross = 0;
  uint64_t vol_s = 0;
  uint64_t vol_rest = 0;
  for (const Edge& e : edges) {
    if (side[e.src]) {
      ++vol_s;
    } else {
      ++vol_rest;
    }
    if (side[e.src] != side[e.dst]) {
      ++cross;
    }
  }
  uint64_t denom = std::min(vol_s, vol_rest);
  if (denom == 0) {
    return 0.0;
  }
  return static_cast<double>(cross) / static_cast<double>(denom);
}

std::vector<uint8_t> ReferenceKCore(const EdgeList& edges, uint64_t num_vertices, uint32_t k) {
  std::vector<std::vector<VertexId>> adj(num_vertices);
  std::vector<uint32_t> degree(num_vertices, 0);
  for (const Edge& e : edges) {
    adj[e.src].push_back(e.dst);
    ++degree[e.dst];
  }
  std::vector<uint8_t> in_core(num_vertices, 1);
  std::deque<VertexId> peel;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (degree[v] < k) {
      in_core[v] = 0;
      peel.push_back(static_cast<VertexId>(v));
    }
  }
  while (!peel.empty()) {
    VertexId v = peel.front();
    peel.pop_front();
    for (VertexId u : adj[v]) {
      if (in_core[u] && degree[u] > 0 && --degree[u] < k) {
        in_core[u] = 0;
        peel.push_back(u);
      }
    }
  }
  return in_core;
}

uint32_t ReferenceDiameterSteps(const EdgeList& edges, uint64_t num_vertices) {
  // Treat the graph as undirected and run BFS from every vertex; the
  // neighborhood function converges at the graph's diameter. Only suitable
  // for the small graphs used in tests.
  std::vector<std::vector<VertexId>> adj(num_vertices);
  for (const Edge& e : edges) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  uint32_t diameter = 0;
  std::vector<uint32_t> level(num_vertices);
  for (uint64_t start = 0; start < num_vertices; ++start) {
    std::fill(level.begin(), level.end(), UINT32_MAX);
    std::deque<VertexId> queue{static_cast<VertexId>(start)};
    level[start] = 0;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      diameter = std::max(diameter, level[v]);
      for (VertexId u : adj[v]) {
        if (level[u] == UINT32_MAX) {
          level[u] = level[v] + 1;
          queue.push_back(u);
        }
      }
    }
  }
  return diameter;
}

}  // namespace xstream
