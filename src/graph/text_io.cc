#include "graph/text_io.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"

namespace xstream {

namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      continue;
    }
    return c == '#' || c == '%' || (c == '/' && line.find("//") != std::string::npos);
  }
  return true;  // all whitespace
}

float MissingWeight(const TextReadOptions& options, VertexId src, VertexId dst) {
  if (!options.random_weights_if_missing) {
    return 1.0f;
  }
  uint64_t h = SplitMix64(options.weight_seed ^ (uint64_t{src} << 32 | dst));
  return static_cast<float>(h >> 40) * (1.0f / static_cast<float>(1 << 24));
}

EdgeList ParseStream(std::istream& in, const TextReadOptions& options, const char* what) {
  EdgeList edges;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) {
      continue;
    }
    std::istringstream fields(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    XS_CHECK(static_cast<bool>(fields >> src >> dst))
        << what << " line " << line_no << ": expected 'src dst [weight]', got: " << line;
    XS_CHECK(src <= kNoVertex && dst <= kNoVertex)
        << what << " line " << line_no << ": vertex id out of 32-bit range";
    float weight;
    if (!(fields >> weight)) {
      weight = MissingWeight(options, static_cast<VertexId>(src), static_cast<VertexId>(dst));
    }
    Edge e{static_cast<VertexId>(src), static_cast<VertexId>(dst), weight};
    edges.push_back(e);
    if (options.symmetrize) {
      edges.push_back(Edge{e.dst, e.src, e.weight});
    }
  }
  return edges;
}

}  // namespace

EdgeList ReadTextEdgeList(const std::string& path, const TextReadOptions& options) {
  std::ifstream in(path);
  XS_CHECK(in.is_open()) << "cannot open " << path;
  return ParseStream(in, options, path.c_str());
}

EdgeList ParseTextEdges(const std::string& text, const TextReadOptions& options) {
  std::istringstream in(text);
  return ParseStream(in, options, "<string>");
}

void WriteTextEdgeList(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  XS_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  out << "# src dst weight (" << edges.size() << " edges)\n";
  for (const Edge& e : edges) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
  }
  XS_CHECK(static_cast<bool>(out)) << "write to " << path << " failed";
}

}  // namespace xstream
