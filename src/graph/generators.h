// Synthetic graph generators.
//
// RMAT follows the paper's setup (§5.2): Graph500 parameters, average degree
// 16, "scale n" = 2^n vertices and 2^(n+4) undirected edges. The remaining
// generators produce the structural stand-ins used for the real-world
// datasets (see DESIGN.md §2.5): grids for high-diameter road networks,
// bipartite graphs for Netflix/ALS, clustered chains for yahoo-web's
// pathological diameter.
#ifndef XSTREAM_GRAPH_GENERATORS_H_
#define XSTREAM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/types.h"

namespace xstream {

struct RmatParams {
  uint32_t scale = 16;        // 2^scale vertices
  uint32_t edge_factor = 16;  // edges per vertex (before direction doubling)
  double a = 0.57, b = 0.19, c = 0.19;  // Graph500; d = 1-a-b-c
  bool undirected = true;  // emit both directions per sampled edge
  uint64_t seed = 1;
};

// RMAT edges, weights uniform in [0,1). Undirected graphs get both
// directions (2 * 2^scale * edge_factor records).
EdgeList GenerateRmat(const RmatParams& params);

// Uniform G(n, m): m sampled (src,dst) pairs, no self loops.
EdgeList GenerateErdosRenyi(uint64_t num_vertices, uint64_t num_edges, bool undirected,
                            uint64_t seed);

// 2D grid (rows x cols), 4-neighborhood, both directions. Diameter =
// rows + cols - 2: the high-diameter stand-in for dimacs-usa.
EdgeList GenerateGrid(uint32_t rows, uint32_t cols, uint64_t seed);

// Simple path 0-1-...-n-1, both directions: maximal diameter per vertex.
EdgeList GeneratePath(uint64_t num_vertices, uint64_t seed);

// `clusters` RMAT-ish communities of `verts_per_cluster`, adjacent clusters
// bridged by a single edge: scale-free locally, huge diameter globally
// (yahoo-web stand-in).
EdgeList GenerateClusteredChain(uint32_t clusters, uint32_t verts_per_cluster,
                                uint32_t intra_edge_factor, uint64_t seed);

// Bipartite rating graph: users [0, num_users), items [num_users,
// num_users+num_items). Every rating appears as a pair of directed edges
// (user->item and item->user) whose weight is the rating in [1, 5].
EdgeList GenerateBipartite(uint32_t num_users, uint32_t num_items, uint64_t num_ratings,
                           uint64_t seed);

// Star: vertex 0 connected to all others, both directions (worst-case
// partition skew for work-stealing tests).
EdgeList GenerateStar(uint64_t num_vertices);

// Deterministically shuffles edge order (the engine must not depend on any
// input ordering: its input is an *unordered* edge list).
void PermuteEdges(EdgeList& edges, uint64_t seed);

// Undirected view of a directed list: every edge plus its reverse. Used for
// WCC/MCST/MIS/HyperANF on directed datasets (the paper's "weakly"/GHS
// semantics treat edges as undirected).
EdgeList Symmetrize(const EdgeList& edges);

// Picks one direction per undirected pair by hash (the paper "assigned a
// random edge direction to the synthetic RMAT and Friendster graphs" for
// SCC). Input must contain both directions of every edge.
EdgeList RandomOrientation(const EdgeList& undirected, uint64_t seed);

}  // namespace xstream

#endif  // XSTREAM_GRAPH_GENERATORS_H_
