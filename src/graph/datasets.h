// Registry of dataset stand-ins for the paper's evaluation graphs (Fig 10).
//
// The paper's real-world datasets (Twitter, Friendster, sk-2005, yahoo-web,
// Netflix, SNAP graphs) are not redistributable and are far beyond a
// development host, so each is mapped to a synthetic generator configuration
// that preserves the structural property the evaluation leans on:
// scale-free degree skew (RMAT), high diameter (grid / clustered chain), or
// bipartite rating structure. A `scale_shift` knob grows every stand-in
// toward paper scale on capable machines.
#ifndef XSTREAM_GRAPH_DATASETS_H_
#define XSTREAM_GRAPH_DATASETS_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"

namespace xstream {

enum class DatasetKind {
  kScaleFree,     // RMAT
  kHighDiameter,  // grid (road network stand-in)
  kChained,       // clustered chain (yahoo-web stand-in)
  kBipartite,     // rating graph (Netflix stand-in)
};

struct DatasetSpec {
  std::string name;       // paper name with a trailing '*' marking a stand-in
  std::string paper_size; // the original |V| / |E| for the docs tables
  DatasetKind kind = DatasetKind::kScaleFree;
  bool directed = true;
  // Generator knobs (interpretation depends on kind; see datasets.cc).
  uint32_t scale = 14;
  uint32_t edge_factor = 16;
  uint64_t seed = 42;
};

// In-memory table rows of Fig 10 (amazon0601, cit-Patents, soc-livejournal,
// dimacs-usa) at reduced scale.
std::vector<DatasetSpec> InMemoryDatasets();

// Out-of-core table rows (Twitter, Friendster, sk-2005, yahoo-web, Netflix)
// at reduced scale.
std::vector<DatasetSpec> OutOfCoreDatasets();

// Looks a spec up by (stand-in) name across both lists.
std::optional<DatasetSpec> FindDataset(const std::string& name);

// Materializes the stand-in. `scale_shift` adds to the size exponent
// (0 = test-friendly defaults, +3 or more approaches paper scale).
EdgeList GenerateDataset(const DatasetSpec& spec, int scale_shift = 0);

}  // namespace xstream

#endif  // XSTREAM_GRAPH_DATASETS_H_
