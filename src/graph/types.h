// Core graph record types.
//
// X-Stream's input is "an unordered set of directed edges" (§2); undirected
// graphs are represented as a pair of directed edges. Edges and updates are
// fixed-size trivially-copyable records because they are moved with byte
// copies by the shuffler and streamed through storage devices verbatim.
#ifndef XSTREAM_GRAPH_TYPES_H_
#define XSTREAM_GRAPH_TYPES_H_

#include <cstdint>
#include <type_traits>
#include <vector>

namespace xstream {

using VertexId = uint32_t;
inline constexpr VertexId kNoVertex = UINT32_MAX;

#pragma pack(push, 1)
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  // The paper adds "a pseudo-random floating point number in the range
  // [0 1)" to inputs without weights. Algorithms that need a direction flag
  // (SCC) or a rating (ALS) reuse this field.
  float weight = 0.0f;
};
#pragma pack(pop)

static_assert(std::is_trivially_copyable_v<Edge>);
static_assert(sizeof(Edge) == 12, "edge records are streamed raw; keep them packed");

using EdgeList = std::vector<Edge>;

// Summary of an edge list: enough to configure an engine.
struct GraphInfo {
  uint64_t num_vertices = 0;  // max vertex id + 1
  uint64_t num_edges = 0;     // directed edge records
};

inline GraphInfo ScanEdges(const EdgeList& edges) {
  GraphInfo info;
  info.num_edges = edges.size();
  for (const Edge& e : edges) {
    if (e.src >= info.num_vertices) {
      info.num_vertices = e.src + 1;
    }
    if (e.dst >= info.num_vertices) {
      info.num_vertices = e.dst + 1;
    }
  }
  return info;
}

}  // namespace xstream

#endif  // XSTREAM_GRAPH_TYPES_H_
