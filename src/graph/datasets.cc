#include "graph/datasets.h"

#include "graph/generators.h"
#include "util/logging.h"

namespace xstream {

std::vector<DatasetSpec> InMemoryDatasets() {
  return {
      // name, paper |V|/|E|, kind, directed, scale, edge_factor, seed
      {"amazon0601*", "403,394 / 3,387,388", DatasetKind::kScaleFree, true, 13, 8, 101},
      {"cit-Patents*", "3,774,768 / 16,518,948", DatasetKind::kScaleFree, true, 14, 4, 102},
      {"soc-livejournal*", "4,847,571 / 68,993,773", DatasetKind::kScaleFree, true, 14, 14, 103},
      // The grid stand-in already contains both directions of every edge, so
      // it is flagged undirected (no further symmetrization needed).
      {"dimacs-usa*", "23,947,347 / 58,333,344", DatasetKind::kHighDiameter, false, 14, 2, 104},
  };
}

std::vector<DatasetSpec> OutOfCoreDatasets() {
  return {
      {"Twitter*", "41.7M / 1.4B", DatasetKind::kScaleFree, true, 15, 24, 201},
      {"Friendster*", "65.6M / 1.8B", DatasetKind::kScaleFree, false, 15, 28, 202},
      {"sk-2005*", "50.6M / 1.9B", DatasetKind::kScaleFree, true, 15, 38, 203},
      {"yahoo-web*", "1.4B / 6.6B", DatasetKind::kChained, false, 16, 5, 204},
      {"Netflix*", "0.5M / 0.1B", DatasetKind::kBipartite, false, 13, 25, 205},
  };
}

std::optional<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& spec : InMemoryDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  for (const auto& spec : OutOfCoreDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return std::nullopt;
}

EdgeList GenerateDataset(const DatasetSpec& spec, int scale_shift) {
  uint32_t scale = spec.scale + static_cast<uint32_t>(scale_shift);
  switch (spec.kind) {
    case DatasetKind::kScaleFree: {
      RmatParams params;
      params.scale = scale;
      params.edge_factor = spec.edge_factor;
      params.undirected = !spec.directed;
      params.seed = spec.seed;
      return GenerateRmat(params);
    }
    case DatasetKind::kHighDiameter: {
      // Square-ish grid with exactly 2^scale vertices: diameter ~
      // 2 * 2^(scale/2), matching the dimacs-usa pathology (Fig 13: 8122
      // steps). Odd scales get a 1:2 aspect ratio.
      uint32_t rows = uint32_t{1} << (scale / 2);
      uint32_t cols = uint32_t{1} << (scale - scale / 2);
      return GenerateGrid(rows, cols, spec.seed);
    }
    case DatasetKind::kChained: {
      // 2^(scale-8) clusters of 256 vertices: long global chain.
      uint32_t clusters = uint32_t{1} << (scale > 8 ? scale - 8 : 1);
      return GenerateClusteredChain(clusters, 256, spec.edge_factor, spec.seed);
    }
    case DatasetKind::kBipartite: {
      // Users dominate items 10:1 as in Netflix; ~edge_factor ratings/user.
      uint32_t users = uint32_t{1} << scale;
      uint32_t items = users / 10 + 1;
      uint64_t ratings = static_cast<uint64_t>(users) * spec.edge_factor;
      return GenerateBipartite(users, items, ratings, spec.seed);
    }
  }
  XS_CHECK(false) << "unreachable";
  return {};
}

}  // namespace xstream
