#include "graph/generators.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace xstream {

namespace {

// One RMAT sample: descend `scale` levels of the adjacency-matrix quadtree.
Edge SampleRmatEdge(Rng& rng, uint32_t scale, double a, double b, double c) {
  VertexId src = 0;
  VertexId dst = 0;
  for (uint32_t level = 0; level < scale; ++level) {
    double r = rng.NextDouble();
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left: no bits set
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return Edge{src, dst, rng.NextFloat()};
}

}  // namespace

EdgeList GenerateRmat(const RmatParams& params) {
  XS_CHECK_LT(params.scale, 31u);
  uint64_t num_vertices = uint64_t{1} << params.scale;
  uint64_t num_samples = num_vertices * params.edge_factor;
  EdgeList edges;
  edges.reserve(params.undirected ? 2 * num_samples : num_samples);
  Rng rng(params.seed);
  for (uint64_t i = 0; i < num_samples; ++i) {
    Edge e = SampleRmatEdge(rng, params.scale, params.a, params.b, params.c);
    edges.push_back(e);
    if (params.undirected) {
      edges.push_back(Edge{e.dst, e.src, e.weight});
    }
  }
  return edges;
}

EdgeList GenerateErdosRenyi(uint64_t num_vertices, uint64_t num_edges, bool undirected,
                            uint64_t seed) {
  XS_CHECK_GE(num_vertices, 2u);
  EdgeList edges;
  edges.reserve(undirected ? 2 * num_edges : num_edges);
  Rng rng(seed);
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(num_vertices - 1));
    if (dst >= src) {
      ++dst;  // skip self loop
    }
    float w = rng.NextFloat();
    edges.push_back(Edge{src, dst, w});
    if (undirected) {
      edges.push_back(Edge{dst, src, w});
    }
  }
  return edges;
}

EdgeList GenerateGrid(uint32_t rows, uint32_t cols, uint64_t seed) {
  XS_CHECK_GE(rows, 1u);
  XS_CHECK_GE(cols, 1u);
  EdgeList edges;
  Rng rng(seed);
  auto id = [cols](uint32_t r, uint32_t c) { return static_cast<VertexId>(r * cols + c); };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        float w = rng.NextFloat();
        edges.push_back(Edge{id(r, c), id(r, c + 1), w});
        edges.push_back(Edge{id(r, c + 1), id(r, c), w});
      }
      if (r + 1 < rows) {
        float w = rng.NextFloat();
        edges.push_back(Edge{id(r, c), id(r + 1, c), w});
        edges.push_back(Edge{id(r + 1, c), id(r, c), w});
      }
    }
  }
  return edges;
}

EdgeList GeneratePath(uint64_t num_vertices, uint64_t seed) {
  XS_CHECK_GE(num_vertices, 2u);
  EdgeList edges;
  edges.reserve(2 * (num_vertices - 1));
  Rng rng(seed);
  for (uint64_t v = 0; v + 1 < num_vertices; ++v) {
    float w = rng.NextFloat();
    edges.push_back(Edge{static_cast<VertexId>(v), static_cast<VertexId>(v + 1), w});
    edges.push_back(Edge{static_cast<VertexId>(v + 1), static_cast<VertexId>(v), w});
  }
  return edges;
}

EdgeList GenerateClusteredChain(uint32_t clusters, uint32_t verts_per_cluster,
                                uint32_t intra_edge_factor, uint64_t seed) {
  XS_CHECK_GE(clusters, 1u);
  XS_CHECK_GE(verts_per_cluster, 2u);
  EdgeList edges;
  Rng rng(seed);
  for (uint32_t k = 0; k < clusters; ++k) {
    VertexId base = k * verts_per_cluster;
    uint64_t intra = static_cast<uint64_t>(verts_per_cluster) * intra_edge_factor;
    for (uint64_t i = 0; i < intra; ++i) {
      VertexId src = base + static_cast<VertexId>(rng.NextBounded(verts_per_cluster));
      VertexId dst = base + static_cast<VertexId>(rng.NextBounded(verts_per_cluster));
      if (src == dst) {
        continue;
      }
      float w = rng.NextFloat();
      edges.push_back(Edge{src, dst, w});
      edges.push_back(Edge{dst, src, w});
    }
    if (k + 1 < clusters) {
      // One bridge edge to the next cluster: the chain dominates diameter.
      VertexId u = base + static_cast<VertexId>(rng.NextBounded(verts_per_cluster));
      VertexId v = base + verts_per_cluster +
                   static_cast<VertexId>(rng.NextBounded(verts_per_cluster));
      float w = rng.NextFloat();
      edges.push_back(Edge{u, v, w});
      edges.push_back(Edge{v, u, w});
    }
  }
  return edges;
}

EdgeList GenerateBipartite(uint32_t num_users, uint32_t num_items, uint64_t num_ratings,
                           uint64_t seed) {
  XS_CHECK_GE(num_users, 1u);
  XS_CHECK_GE(num_items, 1u);
  EdgeList edges;
  edges.reserve(2 * num_ratings);
  Rng rng(seed);
  for (uint64_t i = 0; i < num_ratings; ++i) {
    VertexId user = static_cast<VertexId>(rng.NextBounded(num_users));
    VertexId item = num_users + static_cast<VertexId>(rng.NextBounded(num_items));
    float rating = 1.0f + 4.0f * rng.NextFloat();
    edges.push_back(Edge{user, item, rating});
    edges.push_back(Edge{item, user, rating});
  }
  return edges;
}

EdgeList GenerateStar(uint64_t num_vertices) {
  XS_CHECK_GE(num_vertices, 2u);
  EdgeList edges;
  edges.reserve(2 * (num_vertices - 1));
  for (uint64_t v = 1; v < num_vertices; ++v) {
    edges.push_back(Edge{0, static_cast<VertexId>(v), 1.0f});
    edges.push_back(Edge{static_cast<VertexId>(v), 0, 1.0f});
  }
  return edges;
}

void PermuteEdges(EdgeList& edges, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = edges.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(edges[i - 1], edges[j]);
  }
}

EdgeList Symmetrize(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back(Edge{e.dst, e.src, e.weight});
  }
  return out;
}

EdgeList RandomOrientation(const EdgeList& undirected, uint64_t seed) {
  EdgeList out;
  out.reserve(undirected.size() / 2);
  for (const Edge& e : undirected) {
    VertexId lo = std::min(e.src, e.dst);
    VertexId hi = std::max(e.src, e.dst);
    if (lo == hi) {
      continue;  // drop self loops: no orientation
    }
    // Keep exactly one record of the pair, oriented by the hash bit.
    bool forward = (SplitMix64(seed ^ (uint64_t{lo} << 32 | hi)) & 1) != 0;
    if ((e.src == lo) == forward) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace xstream
