#include "graph/transforms.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace xstream {

EdgeList RemoveSelfLoops(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src != e.dst) {
      out.push_back(e);
    }
  }
  return out;
}

EdgeList DeduplicateEdges(const EdgeList& edges) {
  // Sort indices by (src, dst) keeping input order within a pair, then keep
  // the first record of each run.
  std::vector<uint64_t> index(edges.size());
  for (uint64_t i = 0; i < edges.size(); ++i) {
    index[i] = i;
  }
  std::sort(index.begin(), index.end(), [&edges](uint64_t a, uint64_t b) {
    if (edges[a].src != edges[b].src) {
      return edges[a].src < edges[b].src;
    }
    if (edges[a].dst != edges[b].dst) {
      return edges[a].dst < edges[b].dst;
    }
    return a < b;  // stable within a duplicate group: earliest wins
  });
  EdgeList out;
  out.reserve(edges.size());
  for (uint64_t i = 0; i < index.size(); ++i) {
    const Edge& e = edges[index[i]];
    if (i > 0) {
      const Edge& prev = edges[index[i - 1]];
      if (prev.src == e.src && prev.dst == e.dst) {
        continue;
      }
    }
    out.push_back(e);
  }
  return out;
}

CompactedGraph CompactVertexIds(const EdgeList& edges) {
  CompactedGraph result;
  VertexId max_old = 0;
  for (const Edge& e : edges) {
    max_old = std::max({max_old, e.src, e.dst});
  }
  result.old_to_new.assign(edges.empty() ? 0 : static_cast<size_t>(max_old) + 1, kNoVertex);
  result.edges.reserve(edges.size());
  auto remap = [&result](VertexId old) {
    VertexId& slot = result.old_to_new[old];
    if (slot == kNoVertex) {
      slot = static_cast<VertexId>(result.new_to_old.size());
      result.new_to_old.push_back(old);
    }
    return slot;
  };
  for (const Edge& e : edges) {
    result.edges.push_back(Edge{remap(e.src), remap(e.dst), e.weight});
  }
  result.num_vertices = result.new_to_old.size();
  return result;
}

EdgeList PermuteVertexIds(const EdgeList& edges, uint64_t num_vertices, uint64_t seed) {
  std::vector<VertexId> relabel(num_vertices);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    relabel[v] = static_cast<VertexId>(v);
  }
  Rng rng(seed);
  for (uint64_t v = num_vertices; v > 1; --v) {  // Fisher-Yates
    std::swap(relabel[v - 1], relabel[rng.NextBounded(v)]);
  }
  EdgeList out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    XS_CHECK_LT(e.src, num_vertices);
    XS_CHECK_LT(e.dst, num_vertices);
    out.push_back(Edge{relabel[e.src], relabel[e.dst], e.weight});
  }
  return out;
}

DegreeSummary ComputeDegrees(const EdgeList& edges, uint64_t num_vertices) {
  DegreeSummary s;
  s.out_degree.assign(num_vertices, 0);
  s.in_degree.assign(num_vertices, 0);
  for (const Edge& e : edges) {
    XS_CHECK_LT(e.src, num_vertices);
    XS_CHECK_LT(e.dst, num_vertices);
    ++s.out_degree[e.src];
    ++s.in_degree[e.dst];
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    s.max_out_degree = std::max(s.max_out_degree, s.out_degree[v]);
    s.max_in_degree = std::max(s.max_in_degree, s.in_degree[v]);
  }
  s.average_degree = num_vertices > 0
                         ? static_cast<double>(edges.size()) / static_cast<double>(num_vertices)
                         : 0.0;
  return s;
}

}  // namespace xstream
