// Raw unordered-edge-list files on storage devices.
//
// The out-of-core engine's input is "a file containing the unordered edge
// list of the graph" (§3): flat packed Edge records, no header, no ordering.
// Vertex count is recovered with a streaming scan, which costs one
// sequential pass — the engine folds this into its partitioning pass when
// the caller already knows the count.
#ifndef XSTREAM_GRAPH_EDGE_IO_H_
#define XSTREAM_GRAPH_EDGE_IO_H_

#include <string>

#include "graph/types.h"
#include "storage/device.h"

namespace xstream {

// Writes `edges` to `file` on `dev` as packed records (creates/truncates).
void WriteEdgeFile(StorageDevice& dev, const std::string& file, const EdgeList& edges);

// Appends `edges` to an existing edge file (used by the Fig 17 ingest bench).
void AppendEdgeFile(StorageDevice& dev, const std::string& file, const EdgeList& edges);

// Reads the whole file back (test/bench helper; real runs stream instead).
EdgeList ReadEdgeFile(StorageDevice& dev, const std::string& file);

// One sequential pass to find edge count and max vertex id.
GraphInfo ScanEdgeFile(StorageDevice& dev, const std::string& file);

}  // namespace xstream

#endif  // XSTREAM_GRAPH_EDGE_IO_H_
