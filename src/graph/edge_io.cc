#include "graph/edge_io.h"

#include <cstring>

#include "storage/stream_io.h"
#include "util/logging.h"

namespace xstream {

namespace {
// Chunk size must be a whole number of 12-byte edge records so that streamed
// chunks can be reinterpreted as record arrays.
constexpr size_t kIoChunkBytes = 4 * 1024 * 1024 / sizeof(Edge) * sizeof(Edge);
}

void WriteEdgeFile(StorageDevice& dev, const std::string& file, const EdgeList& edges) {
  FileId f = dev.Create(file);
  StreamWriter writer(dev, f, kIoChunkBytes);
  writer.Append(std::span<const std::byte>(reinterpret_cast<const std::byte*>(edges.data()),
                                           edges.size() * sizeof(Edge)));
  writer.Close();
}

void AppendEdgeFile(StorageDevice& dev, const std::string& file, const EdgeList& edges) {
  FileId f = dev.Exists(file) ? dev.Open(file) : dev.Create(file);
  StreamWriter writer(dev, f, kIoChunkBytes);
  writer.Append(std::span<const std::byte>(reinterpret_cast<const std::byte*>(edges.data()),
                                           edges.size() * sizeof(Edge)));
  writer.Close();
}

EdgeList ReadEdgeFile(StorageDevice& dev, const std::string& file) {
  FileId f = dev.Open(file);
  uint64_t size = dev.FileSize(f);
  XS_CHECK_EQ(size % sizeof(Edge), 0u) << file << " is not a whole number of edge records";
  EdgeList edges(size / sizeof(Edge));
  StreamReader reader(dev, f, kIoChunkBytes);
  size_t written = 0;
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    std::memcpy(reinterpret_cast<std::byte*>(edges.data()) + written, chunk.data(), chunk.size());
    written += chunk.size();
  }
  XS_CHECK_EQ(written, size);
  return edges;
}

GraphInfo ScanEdgeFile(StorageDevice& dev, const std::string& file) {
  FileId f = dev.Open(file);
  uint64_t size = dev.FileSize(f);
  XS_CHECK_EQ(size % sizeof(Edge), 0u) << file << " is not a whole number of edge records";
  GraphInfo info;
  info.num_edges = size / sizeof(Edge);
  StreamReader reader(dev, f, kIoChunkBytes);
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    const Edge* records = reinterpret_cast<const Edge*>(chunk.data());
    uint64_t n = chunk.size() / sizeof(Edge);
    for (uint64_t i = 0; i < n; ++i) {
      if (records[i].src >= info.num_vertices) {
        info.num_vertices = records[i].src + 1;
      }
      if (records[i].dst >= info.num_vertices) {
        info.num_vertices = records[i].dst + 1;
      }
    }
  }
  return info;
}

}  // namespace xstream
