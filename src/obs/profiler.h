// Signal-based sampling CPU profiler: SIGPROF driven by ITIMER_PROF (fires
// on consumed CPU time, so an idle process costs nothing), backtrace(3) in
// the handler, and a lock-free pre-allocated sample buffer so the handler
// stays async-signal-safe — each sample claims a slot with one relaxed
// fetch_add, writes its frames, then release-stores the depth; readers
// acquire-load the depth and skip unpublished slots. Symbolization (dladdr +
// demangling) happens outside the handler, at FoldedStacks() time.
//
// Output is the flamegraph-collapsed "folded stack" format, one line per
// unique stack: "root;caller;leaf <count>". Consumed by --profile=FILE, the
// GET /profile?seconds=N route, and flamegraph.pl directly.
//
// Under -DXSTREAM_DISABLE_OBS the profiler compiles to a stub whose Start()
// reports failure, so callers degrade gracefully.
#ifndef XSTREAM_OBS_PROFILER_H_
#define XSTREAM_OBS_PROFILER_H_

#include <cstdint>
#include <string>

namespace xstream::obs {

#ifndef XSTREAM_DISABLE_OBS

class CpuProfiler {
 public:
  // One profiler per process: SIGPROF and ITIMER_PROF are process-global.
  static CpuProfiler& Global();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  // Installs the SIGPROF handler (SA_RESTART, so IoExecutor syscalls are
  // transparently restarted) and arms ITIMER_PROF at `hz` samples per CPU
  // second. Clears any previous capture. Returns false if already running
  // or if the timer cannot be armed. hz is clamped to [1, 1000].
  bool Start(int hz = 97);

  // Disarms the timer. The handler stays installed (a SIGPROF already in
  // flight must never hit the default disposition, which would kill the
  // process); with the timer off it simply stops firing.
  void Stop();

  bool running() const;
  // Samples captured so far (readable while running).
  uint64_t sample_count() const;
  // Samples dropped because the buffer filled.
  uint64_t dropped_count() const;

  // Aggregated folded stacks ("a;b;c 42\n" lines, root first). Safe to call
  // while running: only published slots are read.
  std::string FoldedStacks();
  // FoldedStacks() to a file; false (with a log line) on I/O failure or if
  // there are no samples.
  bool WriteFolded(const std::string& path);

  // Discards captured samples (Start implies this).
  void Reset();

 private:
  CpuProfiler() = default;
};

#else  // XSTREAM_DISABLE_OBS

class CpuProfiler {
 public:
  static CpuProfiler& Global() {
    static CpuProfiler p;
    return p;
  }
  bool Start(int = 97) { return false; }
  void Stop() {}
  bool running() const { return false; }
  uint64_t sample_count() const { return 0; }
  uint64_t dropped_count() const { return 0; }
  std::string FoldedStacks() { return ""; }
  bool WriteFolded(const std::string&) { return false; }
  void Reset() {}

 private:
  CpuProfiler() = default;
};

#endif  // XSTREAM_DISABLE_OBS

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_PROFILER_H_
