// Bottleneck attribution: per-iteration x per-partition x per-phase wall-time
// accounting, and the diagnosis derived from it.
//
// The paper's whole evaluation is an attribution argument — every result is
// explained by whether a run is compute-, bandwidth- or disk-bound and where
// the streamed time went (§5). The metrics registry and tracer (PR 6/8)
// expose the raw counters and spans behind that story; this layer turns them
// into the answer itself. A PhaseAccountant collects wall-time cells from
// the StreamingPhaseDriver, the stream stores and the scheduler's scan
// source, one cell per (phase, partition):
//
//   scatter    edge scatter compute (per-chunk parallel sections)
//   shuffle    update shuffle / staging (spill-time and in-memory)
//   spill_wait scatter blocked on earlier async update-file writes
//   gather     update application, incl. loads/read waits of the partition
//   scan_io    edge-stream read waits the prefetch did not hide
//   migration  residency migrations applied at partition boundaries
//
// Two views are kept per phase: *wall* seconds (sections timed once on the
// driving thread — these sum to elapsed-time coverage and drive the
// I/O-vs-compute verdict) and per-partition *cell* seconds (busy time spent
// on each partition by whichever thread — in the partition-sequential shape
// identical to wall, in the partition-parallel shape summing to aggregate
// thread-seconds — these drive the straggler/skew index).
//
// Accountants register themselves in a process-global AttributionRegistry so
// the HTTP exporter's GET /attribution and the CLI's --explain report can
// reach every live driver (and a bounded ring of recently retired ones, so
// a finished scheduler job still explains itself). Everything compiles to
// no-ops under -DXSTREAM_DISABLE_OBS.
#ifndef XSTREAM_OBS_ATTRIBUTION_H_
#define XSTREAM_OBS_ATTRIBUTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace xstream::obs {

enum class Phase : int {
  kScatter = 0,
  kShuffle,
  kSpillWait,
  kGather,
  kScanIo,
  kMigration,
};
inline constexpr int kPhaseCount = 6;
const char* PhaseName(Phase p);

// Cell recordings with no meaningful partition (e.g. the in-memory engine's
// global shuffle) land in a separate per-phase "unattributed" column so the
// per-partition skew math never dilutes against them.
inline constexpr uint32_t kNoPartition = UINT32_MAX;

struct PhaseSink {
  Phase phase = Phase::kScatter;
  double seconds = 0.0;
  double share = 0.0;  // of accounted_seconds
};

struct AttributionDiagnosis {
  double accounted_seconds = 0.0;
  // Wall time provably spent waiting on storage: spill-write waits,
  // edge-scan read waits, gather read waits.
  double io_wait_seconds = 0.0;
  double io_bound_ratio = 0.0;  // io_wait / accounted
  bool io_bound = false;        // ratio >= 0.5
  Phase bottleneck = Phase::kScatter;
  std::vector<PhaseSink> ranked;  // phases with time, descending
  // Straggler/skew index over per-partition busy time (cells).
  double skew_max_mean = 0.0;
  double skew_p99_p50 = 0.0;
  uint32_t straggler_partition = kNoPartition;
  // Actionable, flag-level advice derived from the ranking and the skew
  // index (the hint table lives in docs/observability.md).
  std::vector<std::string> hints;
};

struct AttributionSnapshot {
  std::string name;
  uint32_t num_partitions = 0;
  uint64_t iterations = 0;
  std::array<double, kPhaseCount> wall{};  // wall seconds per phase
  std::vector<double> cells;               // [phase * k + partition] busy seconds
  std::array<double, kPhaseCount> unattributed{};
  double gather_read_wait_seconds = 0.0;  // subset of wall[kGather]
  // Per-iteration wall deltas (ring-capped; `iterations` keeps the true
  // count when a very long run overflows the log).
  std::vector<std::array<double, kPhaseCount>> per_iteration;

  double Cell(Phase ph, uint32_t p) const {
    return cells[static_cast<size_t>(ph) * num_partitions + p];
  }
  double CellTotal(Phase ph) const;
  double PartitionSeconds(uint32_t p) const;  // across phases
  double AccountedSeconds() const;            // sum of wall[]

  AttributionDiagnosis Diagnose() const;
  std::string ToJson() const;  // snapshot + diagnosis, one object
};

// Human-readable end-of-run doctor report (--explain): ranked phases, the
// I/O-vs-compute verdict, the skew index and the flag hints.
std::string ExplainReport(const AttributionSnapshot& snap);

#ifndef XSTREAM_DISABLE_OBS

// Thread-safe collector. Recording is wait-free (one relaxed fetch_add on a
// nanosecond cell); snapshots are taken concurrently by the HTTP exporter
// thread. The partition count is fixed at construction, which also
// registers the accountant in the global AttributionRegistry; destruction
// deregisters it, leaving a final snapshot in the registry's retired ring.
class PhaseAccountant {
 public:
  explicit PhaseAccountant(std::string name, uint32_t num_partitions);
  ~PhaseAccountant();

  PhaseAccountant(const PhaseAccountant&) = delete;
  PhaseAccountant& operator=(const PhaseAccountant&) = delete;

  const std::string& name() const { return name_; }
  uint32_t num_partitions() const { return k_; }

  // Busy time on one partition (kNoPartition -> the unattributed column).
  void RecordCell(Phase ph, uint32_t partition, double seconds);
  // Wall time of a driving-thread section of this phase.
  void RecordWall(Phase ph, double seconds);
  // Both at once — the partition-sequential shape, where they coincide.
  void Record(Phase ph, uint32_t partition, double seconds) {
    RecordCell(ph, partition, seconds);
    RecordWall(ph, seconds);
  }
  // Gather-side read stalls (a subset of the gather phase, split out so the
  // I/O-bound verdict can count it as a wait).
  void RecordGatherReadWait(double seconds);

  // Iteration boundaries (driving thread only): EndIteration folds the wall
  // deltas since BeginIteration into the per-iteration log.
  void BeginIteration(uint64_t iteration);
  void EndIteration();

  void Reset();
  AttributionSnapshot Snapshot() const;

 private:
  static uint64_t ToNs(double seconds) {
    return seconds > 0.0 ? static_cast<uint64_t>(seconds * 1e9) : 0;
  }

  const std::string name_;
  const uint32_t k_;
  std::vector<std::atomic<uint64_t>> cells_;  // kPhaseCount * k_, nanoseconds
  std::array<std::atomic<uint64_t>, kPhaseCount> wall_ns_{};
  std::array<std::atomic<uint64_t>, kPhaseCount> unattributed_ns_{};
  std::atomic<uint64_t> gather_read_wait_ns_{0};
  std::atomic<uint64_t> iterations_{0};

  mutable std::mutex mu_;  // guards per_iteration_ and iter_base_
  std::vector<std::array<double, kPhaseCount>> per_iteration_;
  std::array<double, kPhaseCount> iter_base_{};
  bool in_iteration_ = false;
};

// Process-global directory of accountants, for the /attribution route and
// --explain. Live accountants are snapshotted on demand; deregistration
// moves a final snapshot into a bounded retired ring so short-lived
// scheduler jobs remain diagnosable after the batch finishes.
class AttributionRegistry {
 public:
  static AttributionRegistry& Global();

  void Register(PhaseAccountant* a);
  void Deregister(PhaseAccountant* a);

  // Live snapshots first (registration order), then retired ones.
  std::vector<AttributionSnapshot> Snapshots() const;
  // {"accountants":[ <snapshot+diagnosis>... ]}
  std::string ToJson() const;
  void ClearRetired();

 private:
  static constexpr size_t kMaxRetired = 8;
  mutable std::mutex mu_;
  std::vector<PhaseAccountant*> live_;
  std::deque<AttributionSnapshot> retired_;
};

// RAII section timer: records into the accountant at scope exit (or Stop()).
// Null accountant is allowed and skips the clock reads entirely.
enum class PhaseTimerMode { kWallAndCell, kCellOnly, kWallOnly };

class PhaseTimer {
 public:
  PhaseTimer(PhaseAccountant* acct, Phase ph, uint32_t partition = kNoPartition,
             PhaseTimerMode mode = PhaseTimerMode::kWallAndCell)
      : acct_(acct), ph_(ph), partition_(partition), mode_(mode) {}
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void Stop() {
    if (acct_ == nullptr) {
      return;
    }
    double s = timer_.Seconds();
    switch (mode_) {
      case PhaseTimerMode::kWallAndCell:
        acct_->Record(ph_, partition_, s);
        break;
      case PhaseTimerMode::kCellOnly:
        acct_->RecordCell(ph_, partition_, s);
        break;
      case PhaseTimerMode::kWallOnly:
        acct_->RecordWall(ph_, s);
        break;
    }
    acct_ = nullptr;
  }

 private:
  PhaseAccountant* acct_;
  Phase ph_;
  uint32_t partition_;
  PhaseTimerMode mode_;
  WallTimer timer_;
};

#else  // XSTREAM_DISABLE_OBS

// Compile-out stand-ins: no storage, no clock reads, no registry. The
// snapshot/diagnosis types above stay real so --explain code paths link;
// they simply never see data.
class PhaseAccountant {
 public:
  explicit PhaseAccountant(std::string name, uint32_t num_partitions = 0)
      : name_(std::move(name)) {
    (void)num_partitions;
  }
  const std::string& name() const { return name_; }
  uint32_t num_partitions() const { return 0; }
  void RecordCell(Phase, uint32_t, double) {}
  void RecordWall(Phase, double) {}
  void Record(Phase, uint32_t, double) {}
  void RecordGatherReadWait(double) {}
  void BeginIteration(uint64_t) {}
  void EndIteration() {}
  void Reset() {}
  AttributionSnapshot Snapshot() const { return AttributionSnapshot{name_, 0, 0, {}, {}, {}, 0.0, {}}; }

 private:
  std::string name_;
};

class AttributionRegistry {
 public:
  static AttributionRegistry& Global() {
    static AttributionRegistry r;
    return r;
  }
  void Register(PhaseAccountant*) {}
  void Deregister(PhaseAccountant*) {}
  std::vector<AttributionSnapshot> Snapshots() const { return {}; }
  std::string ToJson() const { return "{\"accountants\":[]}"; }
  void ClearRetired() {}
};

enum class PhaseTimerMode { kWallAndCell, kCellOnly, kWallOnly };

class PhaseTimer {
 public:
  PhaseTimer(PhaseAccountant*, Phase, uint32_t = kNoPartition,
             PhaseTimerMode = PhaseTimerMode::kWallAndCell) {}
  void Stop() {}
};

#endif  // XSTREAM_DISABLE_OBS

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_ATTRIBUTION_H_
