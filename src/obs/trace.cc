#include "obs/trace.h"

#include <algorithm>
#include <cmath>

#include "util/env.h"
#include "util/json.h"

namespace xstream::obs {

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: outlives all threads
  return *t;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.Reset();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::set_sample_rate(double rate) {
#ifndef XSTREAM_DISABLE_OBS
  uint32_t threshold;
  if (!(rate > 0.0)) {  // also catches NaN
    threshold = 0;
  } else if (rate >= 1.0) {
    threshold = UINT32_MAX;
  } else {
    // Map (0,1) onto (0, 2^32); clamp tiny rates up to 1 so "some sampling"
    // never silently becomes "none".
    threshold = static_cast<uint32_t>(std::max(1.0, std::ldexp(rate, 32)));
  }
  sample_threshold_.store(threshold, std::memory_order_relaxed);
#else
  (void)rate;
#endif
}

double Tracer::sample_rate() const {
  uint32_t threshold = sample_threshold_.load(std::memory_order_relaxed);
  if (threshold == UINT32_MAX) {
    return 1.0;
  }
  return std::ldexp(static_cast<double>(threshold), -32);
}

uint32_t Tracer::NextSampleDraw() {
  // xorshift32, seeded from the dense thread id (never the all-zero state).
  thread_local uint32_t state = static_cast<uint32_t>(DenseThreadId()) * 2654435761u + 1u;
  uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  state = x;
  return x;
}

void Tracer::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity != 0 && events_.size() > capacity) {
    // Keep the newest `capacity` events, rotated back into chronological
    // order so ring_head_ can restart at 0.
    std::rotate(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(ring_head_),
                events_.end());
    dropped_ += events_.size() - capacity;
    events_.erase(events_.begin(), events_.end() - static_cast<ptrdiff_t>(capacity));
  } else if (ring_head_ != 0) {
    std::rotate(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(ring_head_),
                events_.end());
  }
  ring_head_ = 0;
  ring_capacity_ = capacity;
}

size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::Record(const char* name, const char* cat, uint64_t ts_ns, uint64_t dur_ns,
                    int64_t partition, std::string label) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev{name,
                cat,
                ts_ns,
                dur_ns,
                static_cast<uint32_t>(DenseThreadId()),
                partition,
                std::move(label)};
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_capacity_ != 0 && events_.size() >= ring_capacity_) {
    events_[ring_head_] = std::move(ev);
    ring_head_ = (ring_head_ + 1) % ring_capacity_;
    ++dropped_;
  } else {
    events_.push_back(std::move(ev));
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<ptrdiff_t>(ring_head_), events_.end());
  out.insert(out.end(), events_.begin(), events_.begin() + static_cast<ptrdiff_t>(ring_head_));
  return out;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Oldest first: the ring's tail segment [ring_head_, end) precedes the
  // wrapped head segment [0, ring_head_).
  size_t n = events_.size();
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = events_[(ring_head_ + i) % (n == 0 ? 1 : n)];
    w.BeginObject();
    w.Field("name", ev.name);
    w.Field("cat", ev.cat);
    w.Field("ph", "X");
    w.Field("ts", static_cast<double>(ev.ts_ns) / 1e3);   // microseconds
    w.Field("dur", static_cast<double>(ev.dur_ns) / 1e3);
    w.Field("pid", 1);
    w.Field("tid", static_cast<uint64_t>(ev.tid));
    if (ev.partition >= 0 || !ev.label.empty()) {
      w.Key("args").BeginObject();
      if (ev.partition >= 0) {
        w.Field("p", ev.partition);
      }
      if (!ev.label.empty()) {
        w.Field("job", ev.label);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  if (dropped_ > 0) {
    w.Field("droppedSpans", dropped_);  // extra key; trace viewers ignore it
  }
  w.EndObject();
  return w.TakeString();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteJsonFile(path, ToChromeJson());
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ring_head_ = 0;
  dropped_ = 0;
}

}  // namespace xstream::obs
