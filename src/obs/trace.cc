#include "obs/trace.h"

#include "util/json.h"

namespace xstream::obs {

namespace {

std::atomic<uint32_t> g_next_tid{0};

uint32_t ThisThreadTraceId() {
  thread_local const uint32_t tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: outlives all threads
  return *t;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.Reset();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(const char* name, const char* cat, uint64_t ts_ns, uint64_t dur_ns,
                    int64_t partition, std::string label) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev{name, cat, ts_ns, dur_ns, ThisThreadTraceId(), partition, std::move(label)};
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& ev : events_) {
    w.BeginObject();
    w.Field("name", ev.name);
    w.Field("cat", ev.cat);
    w.Field("ph", "X");
    w.Field("ts", static_cast<double>(ev.ts_ns) / 1e3);   // microseconds
    w.Field("dur", static_cast<double>(ev.dur_ns) / 1e3);
    w.Field("pid", 1);
    w.Field("tid", static_cast<uint64_t>(ev.tid));
    if (ev.partition >= 0 || !ev.label.empty()) {
      w.Key("args").BeginObject();
      if (ev.partition >= 0) {
        w.Field("p", ev.partition);
      }
      if (!ev.label.empty()) {
        w.Field("job", ev.label);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteJsonFile(path, ToChromeJson());
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace xstream::obs
