// Low-overhead metrics registry — counters, gauges and histograms with
// snapshot-on-read semantics (the ant-ray metrics/registry + metrics/group
// idiom, and the substrate for a future xstream-serve /metrics endpoint).
//
// Design constraints, in order:
//   1. Hot-path writes (the scatter loop, IoExecutor completions) must be
//      allocation-free and lock-free: Counter shards its cell across
//      cache-line-padded atomics indexed by a per-thread slot, so concurrent
//      Add()s never contend on one line. Handles are looked up once (name ->
//      reference) and held; the registry mutex guards creation only.
//   2. Reads are snapshots: Value()/ToJson() sum the shards at read time.
//      Totals are exact once writers quiesce (relaxed atomics, no loss).
//   3. Everything compiles out: building with -DXSTREAM_DISABLE_OBS turns
//      every write into a no-op (the escape hatch demanded by the <2%
//      overhead budget, see bench/obs_overhead.cc for the measured cost).
#ifndef XSTREAM_OBS_METRICS_H_
#define XSTREAM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace xstream::obs {

// Index of this thread's counter shard (assigned round-robin on first use).
int ThisThreadShard();

inline constexpr int kCounterShards = 16;

// Monotonic counter, per-thread sharded. Add() is one relaxed fetch_add on a
// thread-private cache line; Value() sums shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef XSTREAM_DISABLE_OBS
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

// Last-write-wins double gauge (resident bytes, queue depth, smoothed
// volumes). Set/Add are single atomic ops.
class Gauge {
 public:
  void Set(double v) {
#ifndef XSTREAM_DISABLE_OBS
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(double delta) {
#ifndef XSTREAM_DISABLE_OBS
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Log2-bucketed histogram for latencies and sizes. Bucket 0 holds values
// <= 1 (in the caller's unit); bucket i holds (2^(i-1), 2^i]. Observe() is
// one relaxed fetch_add plus a CAS-loop sum update — cheap enough for
// per-I/O-request use, not meant for the per-edge path (use a Counter
// there and divide at read time).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  // Upper bound of the bucket where the cumulative count crosses p in [0,1].
  // A bucketed estimate: exact to within one power of two.
  double Percentile(double p) const;

  uint64_t BucketCount(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  void Reset();

 private:
  static int BucketIndex(double v);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Name -> metric registry. Creation takes a mutex (held only at wiring
// time); lookups return stable references valid for the registry's life.
// Names are dot-separated, e.g. "io.ssd.read_bytes",
// "scheduler.scans_saved", "residency.job0.smoothed_update_bytes".
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Snapshot of every metric as one JSON object:
  //   {"counters":{name:value,...},
  //    "gauges":{name:value,...},
  //    "histograms":{name:{"count":..,"sum":..,"mean":..,"p50":..,"p90":..,
  //                        "p99":..},...}}
  std::string ToJson() const;

  // Prometheus text exposition format v0.0.4 (the GET /metrics payload).
  // Dot-separated names are sanitized to the Prometheus charset
  // [a-zA-Z0-9_:] and prefixed "xstream_"; counters gain a "_total" suffix
  // per convention. Histograms render the log2 buckets as cumulative
  // `_bucket{le="2^i"}` series (bucket 0 -> le="1") up to the last
  // populated bound, then `le="+Inf"`, `_sum` and `_count`.
  std::string ToPrometheus() const;

  // Visits every gauge as (name, value) — the /healthz device-liveness
  // probe without exposing the map or its locking.
  void ForEachGauge(const std::function<void(const std::string&, double)>& fn) const;

  // Zeroes every metric (tests and bench repetitions). Handles stay valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// A named prefix over a registry, so a component wires its metrics once:
//   MetricGroup g(MetricsRegistry::Global(), "io." + name);
//   read_bytes_ = &g.counter("read_bytes");   // -> "io.ssd.read_bytes"
class MetricGroup {
 public:
  MetricGroup(MetricsRegistry& registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  Counter& counter(std::string_view suffix) { return registry_.counter(Name(suffix)); }
  Gauge& gauge(std::string_view suffix) { return registry_.gauge(Name(suffix)); }
  Histogram& histogram(std::string_view suffix) { return registry_.histogram(Name(suffix)); }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string Name(std::string_view suffix) const {
    std::string s = prefix_;
    s.push_back('.');
    s.append(suffix);
    return s;
  }

  MetricsRegistry& registry_;
  std::string prefix_;
};

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_METRICS_H_
