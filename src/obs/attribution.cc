#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace xstream::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "scatter", "shuffle", "spill_wait", "gather", "scan_io", "migration",
};

// Skew above this (max partition busy time vs the mean) is called out as a
// partitioning problem in the diagnosis.
constexpr double kSkewHintThreshold = 1.5;
// Phases holding at least this share of accounted time earn a hint.
constexpr double kHintShareThreshold = 0.2;

std::string Pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * x);
  return buf;
}

// The flag-level advice table (mirrored in docs/observability.md). `share`
// is the phase's fraction of accounted time.
std::string PhaseHint(Phase ph, double share) {
  const std::string pct = Pct(share);
  switch (ph) {
    case Phase::kSpillWait:
      return "spill waits take " + pct +
             " of accounted time: raise --spill-depth, enable "
             "--compress-updates, or move update files to a faster device "
             "(--io-backend=uring)";
    case Phase::kScanIo:
      return "edge-scan I/O takes " + pct +
             " of accounted time: enable --pin-edges, raise --memory-budget, "
             "or try --io-backend=uring";
    case Phase::kShuffle:
      return "shuffle/staging takes " + pct +
             " of accounted time: tune --stage-bytes toward the L2/LLC size";
    case Phase::kGather:
      return "gather takes " + pct +
             " of accounted time: raise --memory-budget so updates stay "
             "resident, or enable --compress-updates to shrink gather reads";
    case Phase::kMigration:
      return "residency migration takes " + pct +
             " of accounted time: raise --residency-hysteresis or keep "
             "--memory-budget stable across iterations";
    case Phase::kScatter:
    default:
      return "scatter compute takes " + pct +
             " of accounted time (compute-bound): add --threads, or reduce "
             "per-vertex work before tuning I/O flags";
  }
}

// Nearest-rank percentile over an ascending-sorted vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

void WriteDiagnosisJson(JsonWriter& w, const AttributionDiagnosis& d) {
  w.BeginObject();
  w.Field("accounted_seconds", d.accounted_seconds);
  w.Field("io_wait_seconds", d.io_wait_seconds);
  w.Field("io_bound_ratio", d.io_bound_ratio);
  w.Field("bound", d.io_bound ? "io" : "compute");
  w.Field("bottleneck", PhaseName(d.bottleneck));
  w.Key("ranked").BeginArray();
  for (const PhaseSink& s : d.ranked) {
    w.BeginObject();
    w.Field("phase", PhaseName(s.phase));
    w.Field("seconds", s.seconds);
    w.Field("share", s.share);
    w.EndObject();
  }
  w.EndArray();
  w.Key("skew").BeginObject();
  w.Field("max_mean", d.skew_max_mean);
  w.Field("p99_p50", d.skew_p99_p50);
  if (d.straggler_partition != kNoPartition) {
    w.Field("straggler_partition", static_cast<uint64_t>(d.straggler_partition));
  }
  w.EndObject();
  w.Key("hints").BeginArray();
  for (const std::string& h : d.hints) {
    w.Value(h);
  }
  w.EndArray();
  w.EndObject();
}

void WriteSnapshotJson(JsonWriter& w, const AttributionSnapshot& snap) {
  w.BeginObject();
  w.Field("name", snap.name);
  w.Field("partitions", static_cast<uint64_t>(snap.num_partitions));
  w.Field("iterations", snap.iterations);
  w.Key("phase_wall_seconds").BeginObject();
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    w.Field(kPhaseNames[ph], snap.wall[ph]);
  }
  w.EndObject();
  w.Key("cells_seconds").BeginObject();
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    w.Key(kPhaseNames[ph]).BeginArray();
    for (uint32_t p = 0; p < snap.num_partitions; ++p) {
      w.Value(snap.Cell(static_cast<Phase>(ph), p));
    }
    w.EndArray();
  }
  w.EndObject();
  w.Key("unattributed_seconds").BeginObject();
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    if (snap.unattributed[ph] > 0.0) {
      w.Field(kPhaseNames[ph], snap.unattributed[ph]);
    }
  }
  w.EndObject();
  w.Field("gather_read_wait_seconds", snap.gather_read_wait_seconds);
  w.Key("per_iteration").BeginArray();
  for (size_t i = 0; i < snap.per_iteration.size(); ++i) {
    w.BeginObject();
    for (int ph = 0; ph < kPhaseCount; ++ph) {
      if (snap.per_iteration[i][ph] > 0.0) {
        w.Field(kPhaseNames[ph], snap.per_iteration[i][ph]);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("diagnosis");
  WriteDiagnosisJson(w, snap.Diagnose());
  w.EndObject();
}

}  // namespace

const char* PhaseName(Phase p) {
  int i = static_cast<int>(p);
  return (i >= 0 && i < kPhaseCount) ? kPhaseNames[i] : "unknown";
}

double AttributionSnapshot::CellTotal(Phase ph) const {
  double total = 0.0;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    total += Cell(ph, p);
  }
  return total;
}

double AttributionSnapshot::PartitionSeconds(uint32_t p) const {
  double total = 0.0;
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    total += Cell(static_cast<Phase>(ph), p);
  }
  return total;
}

double AttributionSnapshot::AccountedSeconds() const {
  double total = 0.0;
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    total += wall[ph];
  }
  return total;
}

AttributionDiagnosis AttributionSnapshot::Diagnose() const {
  AttributionDiagnosis d;
  d.accounted_seconds = AccountedSeconds();

  // Waits: spill + edge-scan stalls are whole phases; gather read stalls are
  // the split-out wait slice of the gather phase.
  d.io_wait_seconds = wall[static_cast<int>(Phase::kSpillWait)] +
                      wall[static_cast<int>(Phase::kScanIo)] +
                      gather_read_wait_seconds;
  if (d.accounted_seconds > 0.0) {
    d.io_bound_ratio = std::min(1.0, d.io_wait_seconds / d.accounted_seconds);
  }
  d.io_bound = d.io_bound_ratio >= 0.5;

  for (int ph = 0; ph < kPhaseCount; ++ph) {
    if (wall[ph] <= 0.0) {
      continue;
    }
    PhaseSink s;
    s.phase = static_cast<Phase>(ph);
    s.seconds = wall[ph];
    s.share = d.accounted_seconds > 0.0 ? wall[ph] / d.accounted_seconds : 0.0;
    d.ranked.push_back(s);
  }
  std::stable_sort(d.ranked.begin(), d.ranked.end(),
                   [](const PhaseSink& a, const PhaseSink& b) { return a.seconds > b.seconds; });
  if (!d.ranked.empty()) {
    d.bottleneck = d.ranked.front().phase;
  }

  // Straggler/skew index over per-partition busy time.
  if (num_partitions > 0) {
    std::vector<double> per_part(num_partitions, 0.0);
    double total = 0.0;
    double max = 0.0;
    for (uint32_t p = 0; p < num_partitions; ++p) {
      per_part[p] = PartitionSeconds(p);
      total += per_part[p];
      if (per_part[p] > max) {
        max = per_part[p];
        d.straggler_partition = p;
      }
    }
    if (total > 0.0) {
      double mean = total / num_partitions;
      d.skew_max_mean = mean > 0.0 ? max / mean : 0.0;
      std::vector<double> sorted = per_part;
      std::sort(sorted.begin(), sorted.end());
      double p50 = Percentile(sorted, 0.50);
      double p99 = Percentile(sorted, 0.99);
      d.skew_p99_p50 = p50 > 0.0 ? p99 / p50 : 0.0;
    } else {
      d.straggler_partition = kNoPartition;
    }
  }

  // Hints: every phase holding a meaningful share, in rank order; the
  // bottleneck always speaks even when its share is small.
  for (size_t i = 0; i < d.ranked.size(); ++i) {
    if (i == 0 || d.ranked[i].share >= kHintShareThreshold) {
      d.hints.push_back(PhaseHint(d.ranked[i].phase, d.ranked[i].share));
    }
  }
  if (d.skew_max_mean >= kSkewHintThreshold) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "partition skew %.2fx max/mean (straggler: partition %u): try "
                  "--partitioner=greedy or --partitioner=2ps, or raise --partitions",
                  d.skew_max_mean,
                  d.straggler_partition == kNoPartition ? 0u : d.straggler_partition);
    d.hints.push_back(buf);
  }
  return d;
}

std::string AttributionSnapshot::ToJson() const {
  JsonWriter w;
  WriteSnapshotJson(w, *this);
  return w.TakeString();
}

std::string ExplainReport(const AttributionSnapshot& snap) {
  AttributionDiagnosis d = snap.Diagnose();
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "attribution[%s]: %llu iteration%s over %u partition%s, %.3fs accounted\n",
                snap.name.c_str(), static_cast<unsigned long long>(snap.iterations),
                snap.iterations == 1 ? "" : "s", snap.num_partitions,
                snap.num_partitions == 1 ? "" : "s", d.accounted_seconds);
  out += buf;
  if (d.ranked.empty()) {
    out += "  no attribution data recorded\n";
    return out;
  }
  for (size_t i = 0; i < d.ranked.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  %zu. %-10s %8.3fs  %5.1f%%\n", i + 1,
                  PhaseName(d.ranked[i].phase), d.ranked[i].seconds, 100.0 * d.ranked[i].share);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  verdict: %s-bound (storage waits %s of accounted time: spill %s, "
                "edge-scan %s, gather reads %s)\n",
                d.io_bound ? "I/O" : "compute", Pct(d.io_bound_ratio).c_str(),
                Pct(d.accounted_seconds > 0
                        ? snap.wall[static_cast<int>(Phase::kSpillWait)] / d.accounted_seconds
                        : 0.0)
                    .c_str(),
                Pct(d.accounted_seconds > 0
                        ? snap.wall[static_cast<int>(Phase::kScanIo)] / d.accounted_seconds
                        : 0.0)
                    .c_str(),
                Pct(d.accounted_seconds > 0
                        ? snap.gather_read_wait_seconds / d.accounted_seconds
                        : 0.0)
                    .c_str());
  out += buf;
  if (snap.num_partitions > 1 && d.skew_max_mean > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  skew: partition busy time max/mean %.2fx, p99/p50 %.2fx (slowest: "
                  "partition %u)\n",
                  d.skew_max_mean, d.skew_p99_p50,
                  d.straggler_partition == kNoPartition ? 0u : d.straggler_partition);
    out += buf;
  }
  if (!d.hints.empty()) {
    out += "  hints:\n";
    for (const std::string& h : d.hints) {
      out += "    - " + h + "\n";
    }
  }
  return out;
}

#ifndef XSTREAM_DISABLE_OBS

PhaseAccountant::PhaseAccountant(std::string name, uint32_t num_partitions)
    : name_(std::move(name)),
      k_(num_partitions),
      cells_(static_cast<size_t>(kPhaseCount) * num_partitions) {
  AttributionRegistry::Global().Register(this);
}

PhaseAccountant::~PhaseAccountant() { AttributionRegistry::Global().Deregister(this); }

void PhaseAccountant::RecordCell(Phase ph, uint32_t partition, double seconds) {
  uint64_t ns = ToNs(seconds);
  if (ns == 0) {
    return;
  }
  if (partition == kNoPartition || partition >= k_) {
    unattributed_ns_[static_cast<int>(ph)].fetch_add(ns, std::memory_order_relaxed);
    return;
  }
  cells_[static_cast<size_t>(ph) * k_ + partition].fetch_add(ns, std::memory_order_relaxed);
}

void PhaseAccountant::RecordWall(Phase ph, double seconds) {
  uint64_t ns = ToNs(seconds);
  if (ns == 0) {
    return;
  }
  wall_ns_[static_cast<int>(ph)].fetch_add(ns, std::memory_order_relaxed);
}

void PhaseAccountant::RecordGatherReadWait(double seconds) {
  uint64_t ns = ToNs(seconds);
  if (ns == 0) {
    return;
  }
  gather_read_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void PhaseAccountant::BeginIteration(uint64_t iteration) {
  iterations_.store(iteration + 1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    iter_base_[ph] = static_cast<double>(wall_ns_[ph].load(std::memory_order_relaxed)) * 1e-9;
  }
  in_iteration_ = true;
}

void PhaseAccountant::EndIteration() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!in_iteration_) {
    return;
  }
  in_iteration_ = false;
  std::array<double, kPhaseCount> delta{};
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    delta[ph] =
        static_cast<double>(wall_ns_[ph].load(std::memory_order_relaxed)) * 1e-9 - iter_base_[ph];
  }
  // Ring-capped: a very long run keeps the most recent rows, `iterations`
  // keeps the true count.
  constexpr size_t kMaxRows = 4096;
  if (per_iteration_.size() >= kMaxRows) {
    per_iteration_.erase(per_iteration_.begin());
  }
  per_iteration_.push_back(delta);
}

void PhaseAccountant::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : cells_) {
    c.store(0, std::memory_order_relaxed);
  }
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    wall_ns_[ph].store(0, std::memory_order_relaxed);
    unattributed_ns_[ph].store(0, std::memory_order_relaxed);
    iter_base_[ph] = 0.0;
  }
  gather_read_wait_ns_.store(0, std::memory_order_relaxed);
  iterations_.store(0, std::memory_order_relaxed);
  per_iteration_.clear();
  in_iteration_ = false;
}

AttributionSnapshot PhaseAccountant::Snapshot() const {
  AttributionSnapshot snap;
  snap.name = name_;
  snap.num_partitions = k_;
  snap.iterations = iterations_.load(std::memory_order_relaxed);
  snap.cells.resize(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    snap.cells[i] = static_cast<double>(cells_[i].load(std::memory_order_relaxed)) * 1e-9;
  }
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    snap.wall[ph] = static_cast<double>(wall_ns_[ph].load(std::memory_order_relaxed)) * 1e-9;
    snap.unattributed[ph] =
        static_cast<double>(unattributed_ns_[ph].load(std::memory_order_relaxed)) * 1e-9;
  }
  snap.gather_read_wait_seconds =
      static_cast<double>(gather_read_wait_ns_.load(std::memory_order_relaxed)) * 1e-9;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.per_iteration = per_iteration_;
  }
  return snap;
}

AttributionRegistry& AttributionRegistry::Global() {
  static AttributionRegistry* registry = new AttributionRegistry();
  return *registry;
}

void AttributionRegistry::Register(PhaseAccountant* a) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(a);
}

void AttributionRegistry::Deregister(PhaseAccountant* a) {
  AttributionSnapshot final_snap = a->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), a), live_.end());
  // Accountants that never recorded anything (e.g. a store probed but not
  // run) would crowd the retired ring with noise; drop them.
  if (final_snap.AccountedSeconds() <= 0.0) {
    return;
  }
  if (retired_.size() >= kMaxRetired) {
    retired_.pop_front();
  }
  retired_.push_back(std::move(final_snap));
}

std::vector<AttributionSnapshot> AttributionRegistry::Snapshots() const {
  std::vector<AttributionSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(live_.size() + retired_.size());
  for (PhaseAccountant* a : live_) {
    out.push_back(a->Snapshot());
  }
  for (const AttributionSnapshot& s : retired_) {
    out.push_back(s);
  }
  return out;
}

std::string AttributionRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("accountants").BeginArray();
  for (const AttributionSnapshot& snap : Snapshots()) {
    WriteSnapshotJson(w, snap);
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void AttributionRegistry::ClearRetired() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
}

#endif  // XSTREAM_DISABLE_OBS

}  // namespace xstream::obs
