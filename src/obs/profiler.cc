#include "obs/profiler.h"

#ifndef XSTREAM_DISABLE_OBS

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace xstream::obs {

namespace {

constexpr int kMaxDepth = 64;
constexpr uint64_t kMaxSamples = 1u << 15;  // 32768 * ~520B = ~17 MiB, lazily allocated
// backtrace() returns the handler's own frames on top of the interrupted
// stack: the handler itself and the kernel signal trampoline. Skip them.
constexpr int kHandlerFrames = 2;

struct Sample {
  // 0 = unpublished. The handler release-stores the frame count once the
  // frames are written; readers acquire-load it and skip zeros, so a slot
  // is either invisible or fully written — no locks, no torn reads.
  std::atomic<int32_t> depth{0};
  void* frames[kMaxDepth];
};

// Handler-visible state. The buffer is allocated (and backtrace primed)
// before the handler is installed, so the handler never allocates.
Sample* g_samples = nullptr;
std::atomic<uint64_t> g_next{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<bool> g_running{false};

extern "C" void ProfilerSignalHandler(int /*signo*/) {
  // Everything here is async-signal-safe: two relaxed atomics and
  // backtrace(), which after the Start()-time priming call unwinds without
  // taking locks or allocating.
  uint64_t slot = g_next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxSamples) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& s = g_samples[slot];
  int depth = ::backtrace(s.frames, kMaxDepth);
  s.depth.store(depth > 0 ? depth : 0, std::memory_order_release);
}

// Control-path state (never touched by the handler).
std::mutex g_control_mu;
bool g_handler_installed = false;
std::unordered_map<void*, std::string> g_symbol_cache;

std::string Symbolize(void* pc) {
  auto it = g_symbol_cache.find(pc);
  if (it != g_symbol_cache.end()) {
    return it->second;
  }
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
    // Folded format: semicolons separate frames, spaces separate the count.
    std::replace(name.begin(), name.end(), ';', ',');
    std::replace(name.begin(), name.end(), ' ', '_');
  } else if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base != nullptr ? base + 1 : info.dli_fname,
                  reinterpret_cast<size_t>(pc) -
                      reinterpret_cast<size_t>(info.dli_fbase));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
    name = buf;
  }
  g_symbol_cache.emplace(pc, name);
  return name;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

bool CpuProfiler::Start(int hz) {
  std::lock_guard<std::mutex> lock(g_control_mu);
  if (g_running.load(std::memory_order_relaxed)) {
    return false;
  }
  hz = std::clamp(hz, 1, 1000);

  if (g_samples == nullptr) {
    g_samples = new Sample[kMaxSamples];
  }
  for (uint64_t i = 0; i < std::min(g_next.load(std::memory_order_relaxed), kMaxSamples); ++i) {
    g_samples[i].depth.store(0, std::memory_order_relaxed);
  }
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);

  // Prime backtrace: its first call may dlopen libgcc and malloc — neither
  // is signal-safe, so take that lazy path now, on this thread.
  void* prime[4];
  ::backtrace(prime, 4);

  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = ProfilerSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      return false;
    }
    g_handler_installed = true;
  }

  struct itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = 1000000 / hz;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    return false;
  }
  g_running.store(true, std::memory_order_relaxed);
  return true;
}

void CpuProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_control_mu);
  if (!g_running.load(std::memory_order_relaxed)) {
    return;
  }
  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  g_running.store(false, std::memory_order_relaxed);
}

bool CpuProfiler::running() const { return g_running.load(std::memory_order_relaxed); }

uint64_t CpuProfiler::sample_count() const {
  return std::min(g_next.load(std::memory_order_relaxed), kMaxSamples);
}

uint64_t CpuProfiler::dropped_count() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string CpuProfiler::FoldedStacks() {
  std::lock_guard<std::mutex> lock(g_control_mu);
  if (g_samples == nullptr) {
    return "";
  }
  uint64_t n = std::min(g_next.load(std::memory_order_acquire), kMaxSamples);
  // std::map: deterministic (sorted) output ordering.
  std::map<std::string, uint64_t> folded;
  for (uint64_t i = 0; i < n; ++i) {
    int depth = g_samples[i].depth.load(std::memory_order_acquire);
    if (depth <= kHandlerFrames) {
      continue;  // unpublished, or nothing below the handler
    }
    // Frames come innermost-first; folded format wants root-first.
    std::string key;
    for (int f = depth - 1; f >= kHandlerFrames; --f) {
      if (!key.empty()) {
        key += ';';
      }
      key += Symbolize(g_samples[i].frames[f]);
    }
    ++folded[key];
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool CpuProfiler::WriteFolded(const std::string& path) {
  std::string folded = FoldedStacks();
  if (folded.empty()) {
    std::fprintf(stderr, "profiler: no samples captured, not writing %s\n", path.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "profiler: cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(folded.data(), 1, folded.size(), f);
  bool ok = (std::fclose(f) == 0) && written == folded.size();
  if (!ok) {
    std::fprintf(stderr, "profiler: short write to %s\n", path.c_str());
  }
  return ok;
}

void CpuProfiler::Reset() {
  std::lock_guard<std::mutex> lock(g_control_mu);
  if (g_samples != nullptr) {
    for (uint64_t i = 0; i < std::min(g_next.load(std::memory_order_relaxed), kMaxSamples);
         ++i) {
      g_samples[i].depth.store(0, std::memory_order_relaxed);
    }
  }
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace xstream::obs

#endif  // XSTREAM_DISABLE_OBS
