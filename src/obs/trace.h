// Phase tracer: records spans at the StreamingPhaseDriver / store /
// scheduler seams and exports them as Chrome trace-event JSON (the
// ["traceEvents"] array format), viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Enabled by the CLI's --trace=FILE flag; when disabled —
// the default — a span costs one relaxed atomic load and nothing else.
//
// Long-running jobs keep tracing affordable two ways (both CLI-exposed):
//   * sampling (--trace-sample=RATE): each span start draws from a
//     thread-local xorshift PRNG against an atomic threshold, so RATE=0.01
//     keeps 1% of spans at the same single-digit-ns per-span cost;
//   * ring retention (--trace-ring=N): the event store becomes a circular
//     buffer of the most recent N spans (oldest dropped, drop count kept),
//     so a day-long run can trace always-on in bounded memory and dump the
//     tail via GET /trace or at exit.
//
// Span vocabulary (names are stable; docs/observability.md catalogs them):
//   setup      edge partitioning / setup shuffle          cat "setup"
//   iteration  one scatter+gather cycle                   cat "phase"
//   scatter    one partition's edge scan                  cat "phase"
//   shuffle    routing buffered updates to partitions     cat "phase"
//   spill      shuffle + device write of an update batch  cat "phase"
//   gather     one partition's update drain + apply       cat "phase"
//   migration  residency promote/evict of one partition   cat "residency"
//   admission / retirement / resplit   scheduler events   cat "scheduler"
//
// Spans are recorded as Chrome "X" (complete) events; nesting is by time
// containment per thread, which Perfetto renders as stacked slices.
#ifndef XSTREAM_OBS_TRACE_H_
#define XSTREAM_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace xstream::obs {

struct TraceEvent {
  const char* name;   // static string (span vocabulary above)
  const char* cat;    // static category string
  uint64_t ts_ns;     // start, relative to tracer epoch
  uint64_t dur_ns;
  uint32_t tid;       // dense per-thread id (same as the log prefix's t<N>)
  int64_t partition;  // args.p; -1 = none
  std::string label;  // args.job; empty = none
};

class Tracer {
 public:
  static Tracer& Global();

  // Starts recording and resets the epoch. Spans opened while disabled are
  // dropped even if tracing is enabled before they close.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Per-span sampling probability in [0,1]; 1 (the default) records every
  // span, 0 records none. The decision is made at span start, so a sampled
  // span is always recorded whole. Compiled to a no-op (rate pinned to
  // "never") under -DXSTREAM_DISABLE_OBS.
  void set_sample_rate(double rate);
  double sample_rate() const;

  // Whether a span starting now should record: enabled() AND the sampling
  // draw. The disabled fast path is one relaxed load, same as enabled().
  bool Sample() const {
#ifndef XSTREAM_DISABLE_OBS
    if (!enabled_.load(std::memory_order_relaxed)) {
      return false;
    }
    uint32_t threshold = sample_threshold_.load(std::memory_order_relaxed);
    if (threshold == UINT32_MAX) {
      return true;
    }
    return threshold != 0 && NextSampleDraw() < threshold;
#else
    return false;
#endif
  }

  // Bounds the event store to the most recent `capacity` spans (0 = keep
  // everything, the default). Oldest events are dropped; dropped() counts
  // them. Shrinking below the current size keeps the newest events.
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const;
  uint64_t dropped() const;

  uint64_t NowNs() const { return epoch_.Nanos(); }

  void Record(const char* name, const char* cat, uint64_t ts_ns, uint64_t dur_ns,
              int64_t partition = -1, std::string label = {});

  // Copy of the recorded events, oldest first (tests, GET /trace).
  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — ts/dur in microseconds.
  // Includes "droppedSpans" when ring retention evicted anything.
  std::string ToChromeJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  void Reset();

 private:
  // Thread-local xorshift32 draw for the sampling decision: no locks, no
  // syscalls, a few ns. Seeded per thread so concurrent spans decorrelate.
  static uint32_t NextSampleDraw();

  std::atomic<bool> enabled_{false};
  // Record a span when draw < threshold: UINT32_MAX = always (skips the
  // draw), 0 = never.
  std::atomic<uint32_t> sample_threshold_{UINT32_MAX};
  WallTimer epoch_;
  mutable std::mutex mu_;
  // With ring_capacity_ == 0 a plain append log; otherwise a circular
  // buffer: once events_.size() reaches capacity, ring_head_ is the oldest
  // element and new events overwrite it.
  std::vector<TraceEvent> events_;
  size_t ring_capacity_ = 0;
  size_t ring_head_ = 0;
  uint64_t dropped_ = 0;
};

// RAII span against the global tracer. Construction samples the clock only
// when the span is recorded (tracing enabled and the sampling draw passes).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "phase", int64_t partition = -1,
                     std::string label = {})
      : name_(name),
        cat_(cat),
        partition_(partition),
        label_(std::move(label)),
        active_(Tracer::Global().Sample()) {
    if (active_) {
      start_ns_ = Tracer::Global().NowNs();
    }
  }

  ~TraceSpan() { Close(); }

  // Ends the span early (for spans that do not line up with a C++ scope).
  void Close() {
    if (active_) {
      active_ = false;
      Tracer& t = Tracer::Global();
      t.Record(name_, cat_, start_ns_, t.NowNs() - start_ns_, partition_, std::move(label_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  int64_t partition_;
  std::string label_;
  bool active_;
  uint64_t start_ns_ = 0;
};

// Manual span for begin/end pairs split across functions (e.g. the driver's
// externally driven scatter protocol). Inactive unless Start() sampled in
// while tracing was enabled.
class ManualSpan {
 public:
  void Start(int64_t partition = -1) {
    active_ = Tracer::Global().Sample();
    if (active_) {
      partition_ = partition;
      start_ns_ = Tracer::Global().NowNs();
    }
  }

  void Stop(const char* name, const char* cat = "phase") {
    if (active_) {
      active_ = false;
      Tracer& t = Tracer::Global();
      t.Record(name, cat, start_ns_, t.NowNs() - start_ns_, partition_);
    }
  }

  // Discards the span without recording (cancelled iterations).
  void Cancel() { active_ = false; }

 private:
  bool active_ = false;
  int64_t partition_ = -1;
  uint64_t start_ns_ = 0;
};

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_TRACE_H_
