// Phase tracer: records spans at the StreamingPhaseDriver / store /
// scheduler seams and exports them as Chrome trace-event JSON (the
// ["traceEvents"] array format), viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Enabled by the CLI's --trace=FILE flag; when disabled —
// the default — a span costs one relaxed atomic load and nothing else.
//
// Span vocabulary (names are stable; docs/observability.md catalogs them):
//   setup      edge partitioning / setup shuffle          cat "setup"
//   iteration  one scatter+gather cycle                   cat "phase"
//   scatter    one partition's edge scan                  cat "phase"
//   shuffle    routing buffered updates to partitions     cat "phase"
//   spill      shuffle + device write of an update batch  cat "phase"
//   gather     one partition's update drain + apply       cat "phase"
//   migration  residency promote/evict of one partition   cat "residency"
//   admission / retirement / resplit   scheduler events   cat "scheduler"
//
// Spans are recorded as Chrome "X" (complete) events; nesting is by time
// containment per thread, which Perfetto renders as stacked slices.
#ifndef XSTREAM_OBS_TRACE_H_
#define XSTREAM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace xstream::obs {

struct TraceEvent {
  const char* name;   // static string (span vocabulary above)
  const char* cat;    // static category string
  uint64_t ts_ns;     // start, relative to tracer epoch
  uint64_t dur_ns;
  uint32_t tid;       // dense per-thread id
  int64_t partition;  // args.p; -1 = none
  std::string label;  // args.job; empty = none
};

class Tracer {
 public:
  static Tracer& Global();

  // Starts recording and resets the epoch. Spans opened while disabled are
  // dropped even if tracing is enabled before they close.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  uint64_t NowNs() const { return epoch_.Nanos(); }

  void Record(const char* name, const char* cat, uint64_t ts_ns, uint64_t dur_ns,
              int64_t partition = -1, std::string label = {});

  // Copy of the recorded events (tests).
  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — ts/dur in microseconds.
  std::string ToChromeJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  WallTimer epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span against the global tracer. Construction samples the clock only
// when tracing is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "phase", int64_t partition = -1,
                     std::string label = {})
      : name_(name),
        cat_(cat),
        partition_(partition),
        label_(std::move(label)),
        active_(Tracer::Global().enabled()) {
    if (active_) {
      start_ns_ = Tracer::Global().NowNs();
    }
  }

  ~TraceSpan() { Close(); }

  // Ends the span early (for spans that do not line up with a C++ scope).
  void Close() {
    if (active_) {
      active_ = false;
      Tracer& t = Tracer::Global();
      t.Record(name_, cat_, start_ns_, t.NowNs() - start_ns_, partition_, std::move(label_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  int64_t partition_;
  std::string label_;
  bool active_;
  uint64_t start_ns_ = 0;
};

// Manual span for begin/end pairs split across functions (e.g. the driver's
// externally driven scatter protocol). Inactive unless Start() ran while
// tracing was enabled.
class ManualSpan {
 public:
  void Start(int64_t partition = -1) {
    active_ = Tracer::Global().enabled();
    if (active_) {
      partition_ = partition;
      start_ns_ = Tracer::Global().NowNs();
    }
  }

  void Stop(const char* name, const char* cat = "phase") {
    if (active_) {
      active_ = false;
      Tracer& t = Tracer::Global();
      t.Record(name, cat, start_ns_, t.NowNs() - start_ns_, partition_);
    }
  }

  // Discards the span without recording (cancelled iterations).
  void Cancel() { active_ = false; }

 private:
  bool active_ = false;
  int64_t partition_ = -1;
  uint64_t start_ns_ = 0;
};

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_TRACE_H_
