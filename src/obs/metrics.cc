#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace xstream::obs {

namespace {
std::atomic<int> g_next_shard{0};

// Prometheus metric names allow [a-zA-Z0-9_:]; our dot-separated names map
// each invalid byte to '_' under an "xstream_" namespace prefix.
std::string PromName(const std::string& name, const char* suffix = "") {
  std::string out = "xstream_";
  out.reserve(out.size() + name.size() + 8);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  out += suffix;
  return out;
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendUint(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Subsystem-level description catalog for # HELP lines, keyed by the
// raw-name prefix each subsystem registers its metrics under (longest match
// wins). Coarse on purpose: series come and go with features, prefixes are
// the stable unit.
const char* MetricHelp(const std::string& name) {
  static constexpr struct {
    const char* prefix;
    const char* help;
  } kCatalog[] = {
      {"io.", "Per-device I/O executor: operation counts, bytes and queue timings."},
      {"device.", "Storage backend capability and liveness gauges."},
      {"store.codec.", "Update-stream compression: raw/encoded bytes and codec timings."},
      {"store.", "Stream-store internals: spill waits, gather waits, buffer occupancy."},
      {"scheduler.", "Multi-job scheduler: shared-scan rounds, admissions, job states."},
      {"residency.", "Hybrid residency planner: pinned partitions and migrations."},
      {"run.", "Live progress of the current solo run (driver-published gauges)."},
      {"job.", "Live progress of a scheduler job (driver-published gauges)."},
      {"telemetry.", "HTTP telemetry endpoint self-instrumentation."},
      {"trace.", "Phase tracer internals: recorded/dropped span counts."},
      {"bench.", "Microbenchmark scratch metrics (not produced by real runs)."},
  };
  const char* best = nullptr;
  size_t best_len = 0;
  for (const auto& entry : kCatalog) {
    size_t len = std::char_traits<char>::length(entry.prefix);
    if (len > best_len && name.compare(0, len, entry.prefix) == 0) {
      best = entry.help;
      best_len = len;
    }
  }
  return best != nullptr ? best : "xstream metric (see docs/observability.md).";
}

void AppendHelpType(std::string& out, const std::string& raw_name, const std::string& pname,
                    const char* type) {
  out += "# HELP ";
  out += pname;
  out.push_back(' ');
  out += MetricHelp(raw_name);
  out.push_back('\n');
  out += "# TYPE ";
  out += pname;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}
}  // namespace

int ThisThreadShard() {
  thread_local const int shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

int Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) {
    return 0;  // also catches NaN and negatives
  }
  int exp = static_cast<int>(std::ceil(std::log2(v)));
  return exp < kBuckets ? exp : kBuckets - 1;
}

void Histogram::Observe(double v) {
#ifndef XSTREAM_DISABLE_OBS
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

double Histogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  uint64_t total = 0;
  uint64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0.0;
  }
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return std::ldexp(1.0, i);  // bucket upper bound 2^i (bucket 0 -> 1.0)
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: outlives all threads
  return *r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w.Field(name, c->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w.Field(name, g->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Field("count", h->Count());
    w.Field("sum", h->Sum());
    w.Field("mean", h->Mean());
    w.Field("p50", h->Percentile(0.50));
    w.Field("p90", h->Percentile(0.90));
    w.Field("p99", h->Percentile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string pname = PromName(name, "_total");
    AppendHelpType(out, name, pname, "counter");
    out += pname;
    out.push_back(' ');
    AppendUint(out, c->Value());
    out.push_back('\n');
  }
  for (const auto& [name, g] : gauges_) {
    std::string pname = PromName(name);
    AppendHelpType(out, name, pname, "gauge");
    out += pname;
    out.push_back(' ');
    AppendDouble(out, g->Value());
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms_) {
    std::string pname = PromName(name);
    AppendHelpType(out, name, pname, "histogram");
    // Log2 buckets: bucket i's upper bound is 2^i (bucket 0 holds <= 1).
    // Emit cumulative counts up to the last populated bound; every bound
    // after that is redundant with +Inf.
    int last = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h->BucketCount(i) > 0) {
        last = i;
      }
    }
    uint64_t cumulative = 0;
    for (int i = 0; i <= last; ++i) {
      cumulative += h->BucketCount(i);
      out += pname;
      out += "_bucket{le=\"";
      AppendUint(out, uint64_t{1} << i);
      out += "\"} ";
      AppendUint(out, cumulative);
      out.push_back('\n');
    }
    out += pname;
    out += "_bucket{le=\"+Inf\"} ";
    AppendUint(out, h->Count());
    out.push_back('\n');
    out += pname;
    out += "_sum ";
    AppendDouble(out, h->Sum());
    out.push_back('\n');
    out += pname;
    out += "_count ";
    AppendUint(out, h->Count());
    out.push_back('\n');
  }
  return out;
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, double)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  // fn runs under the registry mutex: it must not create or look up metrics.
  for (const auto& [name, g] : gauges_) {
    fn(name, g->Value());
  }
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace xstream::obs
