// Embedded HTTP/1.1 telemetry endpoint — the live window into a running
// process (the first brick of the xstream-serve daemon, see ROADMAP.md).
//
// Dependency-free by design: a blocking accept loop on one background
// thread over plain POSIX sockets, GET-only, one response per connection
// (Connection: close). That is deliberately primitive — the consumers are a
// Prometheus scraper on a multi-second interval and a human with curl, so
// connection reuse, TLS and request pipelining buy nothing here, and the
// engine's hot paths never touch this thread.
//
// Built-in routes:
//   GET /metrics       MetricsRegistry::ToPrometheus() (text exposition v0.0.4)
//   GET /healthz       200 {"status":"ok",...} + per-device liveness gauges
//   GET /trace         the tracer's Chrome trace JSON (ring tail when bounded)
//   GET /attribution   AttributionRegistry snapshots + diagnosis JSON
//   GET /profile?seconds=N  on-demand CPU profile, folded-stack text
// The CLI registers /stats and /jobs on top via Handle(); any path can be
// overridden. Unknown paths 404, non-GET methods 405.
//
// Binds 127.0.0.1 only: telemetry is operator-facing, not a public surface.
// Port 0 asks the kernel for an ephemeral port; port() reports the binding.
//
// Under -DXSTREAM_DISABLE_OBS the class compiles to a stub whose Start()
// returns false, so callers keep one code path.
#ifndef XSTREAM_OBS_HTTP_EXPORTER_H_
#define XSTREAM_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace xstream::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Handlers run on the exporter thread, concurrent with the engine: they
// must only touch thread-safe state (the registry, the tracer, scheduler
// snapshot accessors, mutex-guarded CLI pointers). `query` is the raw
// query string after the '?' ("" when absent); most handlers ignore it.
using HttpHandler = std::function<HttpResponse(const std::string& query)>;

#ifndef XSTREAM_DISABLE_OBS

class HttpExporter {
 public:
  HttpExporter();  // wires the built-in /metrics, /healthz and /trace routes
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Registers (or replaces) the handler for an exact path.
  void Handle(const std::string& path, HttpHandler handler);

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the accept thread.
  // Returns false — with an XS_LOG(Error) line — if the socket setup fails.
  bool Start(uint16_t port);

  // Stops accepting, closes the listener and joins the thread. Idempotent;
  // the destructor calls it.
  void Stop();

  // The bound port once Start() succeeded, else -1.
  int port() const { return port_.load(std::memory_order_relaxed); }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const std::string& path, const std::string& query);

  mutable std::mutex mu_;  // guards handlers_
  std::map<std::string, HttpHandler> handlers_;
  std::thread thread_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{-1};
  std::atomic<bool> running_{false};
};

#else  // XSTREAM_DISABLE_OBS

// No-op stand-in: the telemetry plane compiles out with the rest of the
// observability layer. Start() reporting false lets the CLI print one
// "unavailable" warning instead of ifdef-ing its wiring.
class HttpExporter {
 public:
  void Handle(const std::string&, HttpHandler) {}
  bool Start(uint16_t) { return false; }
  void Stop() {}
  int port() const { return -1; }
  bool running() const { return false; }
};

#endif  // XSTREAM_DISABLE_OBS

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_HTTP_EXPORTER_H_
