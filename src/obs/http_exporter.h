// Embedded HTTP/1.1 endpoint — the live window into a running process, and
// the transport the xstream-serve daemon mounts its query API on.
//
// Dependency-free by design: a blocking accept loop on one background
// thread over plain POSIX sockets, one response per connection
// (Connection: close). That is deliberately primitive — the consumers are a
// Prometheus scraper on a multi-second interval, a human with curl, and the
// serve daemon's job-submission clients, so connection reuse, TLS and
// request pipelining buy nothing here, and the engine's hot paths never
// touch this thread.
//
// Two routing layers share the port:
//   Handle(path, ...)        exact-path, GET-only telemetry routes (any
//                            other method answers 405)
//   HandlePrefix(prefix, ...) method-aware REST routes: the handler sees
//                            the full HttpRequest (method, sub-path, query,
//                            body) for everything at or under the prefix —
//                            how xstream-serve mounts POST/GET/DELETE
//                            /v1/jobs without teaching the exporter any
//                            route semantics
// Request bodies are read up to Content-Length, bounded by
// set_max_body_bytes(); oversized announcements answer 413 without reading
// the body. Unknown paths 404.
//
// Built-in routes:
//   GET /metrics       MetricsRegistry::ToPrometheus() (text exposition v0.0.4)
//   GET /healthz       200 {"status":"ok",...} + per-device liveness gauges
//   GET /trace         the tracer's Chrome trace JSON (ring tail when bounded)
//   GET /attribution   AttributionRegistry snapshots + diagnosis JSON
//   GET /profile?seconds=N  on-demand CPU profile, folded-stack text
// The CLI registers /stats and /jobs on top via Handle(); any path can be
// overridden.
//
// Binds 127.0.0.1 only: both telemetry and the serve API are
// operator-facing, not a public surface. Port 0 asks the kernel for an
// ephemeral port; port() reports the binding.
//
// Under -DXSTREAM_DISABLE_OBS the class compiles to a stub whose Start()
// returns false, so callers keep one code path.
#ifndef XSTREAM_OBS_HTTP_EXPORTER_H_
#define XSTREAM_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace xstream::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Extra response headers (e.g. {"Retry-After", "1"} on a 429/503).
  std::vector<std::pair<std::string, std::string>> headers;
};

// One parsed request, as a prefix-route handler sees it. `path` has the
// query string stripped; `query` is the raw text after '?' ("" when absent);
// `body` is the request entity (empty for bodiless methods).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::string body;
};

// Handlers run on the exporter thread, concurrent with the engine: they
// must only touch thread-safe state (the registry, the tracer, scheduler
// snapshot accessors, mutex-guarded CLI pointers). `query` is the raw
// query string after the '?' ("" when absent); most handlers ignore it.
using HttpHandler = std::function<HttpResponse(const std::string& query)>;

// Method-aware prefix-route handler (same threading contract).
using RouteHandler = std::function<HttpResponse(const HttpRequest& request)>;

#ifndef XSTREAM_DISABLE_OBS

class HttpExporter {
 public:
  HttpExporter();  // wires the built-in /metrics, /healthz and /trace routes
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Registers (or replaces) the GET-only handler for an exact path.
  void Handle(const std::string& path, HttpHandler handler);

  // Registers (or replaces) a method-aware handler for `prefix` and every
  // path below it ("/v1/jobs" matches "/v1/jobs", "/v1/jobs/3/result").
  // Exact-path handlers win over prefix routes; among prefixes the longest
  // match wins.
  void HandlePrefix(const std::string& prefix, RouteHandler handler);

  // Request-body ceiling: a Content-Length above this answers 413 without
  // reading the body. Default 1 MiB.
  void set_max_body_bytes(size_t bytes) { max_body_bytes_.store(bytes, std::memory_order_relaxed); }

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the accept thread.
  // Returns false — with an XS_LOG(Error) line — if the socket setup fails.
  bool Start(uint16_t port);

  // Stops accepting, closes the listener and joins the thread. Idempotent;
  // the destructor calls it.
  void Stop();

  // The bound port once Start() succeeded, else -1.
  int port() const { return port_.load(std::memory_order_relaxed); }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  mutable std::mutex mu_;  // guards handlers_ and prefix_routes_
  std::map<std::string, HttpHandler> handlers_;
  std::map<std::string, RouteHandler> prefix_routes_;
  std::atomic<size_t> max_body_bytes_{1 << 20};
  std::thread thread_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{-1};
  std::atomic<bool> running_{false};
};

#else  // XSTREAM_DISABLE_OBS

// No-op stand-in: the telemetry plane compiles out with the rest of the
// observability layer. Start() reporting false lets the CLI print one
// "unavailable" warning instead of ifdef-ing its wiring.
class HttpExporter {
 public:
  void Handle(const std::string&, HttpHandler) {}
  void HandlePrefix(const std::string&, RouteHandler) {}
  void set_max_body_bytes(size_t) {}
  bool Start(uint16_t) { return false; }
  void Stop() {}
  int port() const { return -1; }
  bool running() const { return false; }
};

#endif  // XSTREAM_DISABLE_OBS

}  // namespace xstream::obs

#endif  // XSTREAM_OBS_HTTP_EXPORTER_H_
