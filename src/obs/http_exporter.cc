#include "obs/http_exporter.h"

#ifndef XSTREAM_DISABLE_OBS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 410:
      return "Gone";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

// Case-insensitive header lookup in the raw header block; returns the
// trimmed value or "" when absent.
std::string HeaderValue(const std::string& headers, const std::string& name) {
  std::string lower;
  lower.reserve(headers.size());
  for (char c : headers) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  std::string needle = "\r\n" + name + ":";
  for (char& c : needle) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  size_t pos = lower.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t begin = pos + needle.size();
  size_t end = headers.find("\r\n", begin);
  std::string value = headers.substr(begin, end == std::string::npos ? end : end - begin);
  size_t first = value.find_first_not_of(" \t");
  size_t last = value.find_last_not_of(" \t");
  if (first == std::string::npos) {
    return "";
  }
  return value.substr(first, last - first + 1);
}

// /healthz: liveness plus the per-device backend gauges
// (device.<name>.uring_active, .direct_supported, .uring_fixed_buffers),
// grouped by device — an operator's one-request answer to "is it up, and
// did the fast I/O paths actually engage".
HttpResponse HealthzResponse(double uptime_seconds) {
  JsonWriter w;
  w.BeginObject();
  w.Field("status", "ok");
  w.Field("uptime_seconds", uptime_seconds);
  w.Field("pid", static_cast<uint64_t>(::getpid()));
  w.Key("devices").BeginObject();
  std::string open_device;  // gauges arrive sorted, so devices arrive grouped
  MetricsRegistry::Global().ForEachGauge([&](const std::string& name, double value) {
    constexpr std::string_view kPrefix = "device.";
    if (name.rfind(kPrefix, 0) != 0) {
      return;
    }
    size_t dot = name.find('.', kPrefix.size());
    if (dot == std::string::npos) {
      return;
    }
    std::string device = name.substr(kPrefix.size(), dot - kPrefix.size());
    std::string metric = name.substr(dot + 1);
    if (metric != "uring_active" && metric != "direct_supported" &&
        metric != "uring_fixed_buffers") {
      return;
    }
    if (device != open_device) {
      if (!open_device.empty()) {
        w.EndObject();
      }
      w.Key(device).BeginObject();
      open_device = device;
    }
    w.Field(metric, value);
  });
  if (!open_device.empty()) {
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return HttpResponse{200, "application/json", w.TakeString()};
}

// Picks `key=N` out of a raw query string; `fallback` when absent/garbled.
int QueryInt(const std::string& query, const std::string& key, int fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair = query.substr(pos, amp == std::string::npos ? std::string::npos
                                                                  : amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      return std::atoi(pair.c_str() + eq + 1);
    }
    if (amp == std::string::npos) {
      break;
    }
    pos = amp + 1;
  }
  return fallback;
}

// /profile?seconds=N: on-demand folded-stack capture. If the profiler is
// already running (--profile owns it), snapshot the samples so far instead
// of fighting over the process-wide timer. Otherwise run a capture window
// right here — blocking this connection (and further scrapes, the server is
// single-threaded) for N seconds is fine for an operator request.
HttpResponse ProfileResponse(const std::string& query) {
  CpuProfiler& prof = CpuProfiler::Global();
  if (prof.running()) {
    return HttpResponse{200, "text/plain; charset=utf-8", prof.FoldedStacks()};
  }
  int seconds = std::clamp(QueryInt(query, "seconds", 1), 1, 30);
  if (!prof.Start()) {
    return HttpResponse{503, "application/json",
                        "{\"error\":\"profiler unavailable\"}\n"};
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  prof.Stop();
  return HttpResponse{200, "text/plain; charset=utf-8", prof.FoldedStacks()};
}

}  // namespace

HttpExporter::HttpExporter() {
  auto up = std::make_shared<WallTimer>();
  Handle("/metrics", [](const std::string&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        MetricsRegistry::Global().ToPrometheus()};
  });
  Handle("/healthz", [up](const std::string&) { return HealthzResponse(up->Seconds()); });
  Handle("/trace", [](const std::string&) {
    return HttpResponse{200, "application/json", Tracer::Global().ToChromeJson()};
  });
  Handle("/attribution", [](const std::string&) {
    return HttpResponse{200, "application/json", AttributionRegistry::Global().ToJson()};
  });
  Handle("/profile", [](const std::string& query) { return ProfileResponse(query); });
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
}

void HttpExporter::HandlePrefix(const std::string& prefix, RouteHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  prefix_routes_[prefix] = std::move(handler);
}

bool HttpExporter::Start(uint16_t port) {
  if (running()) {
    return true;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    XS_LOG(Error) << "telemetry: socket() failed: " << std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    XS_LOG(Error) << "telemetry: bind(127.0.0.1:" << port
                  << ") failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    XS_LOG(Error) << "telemetry: listen() failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    XS_LOG(Error) << "telemetry: getsockname() failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_.store(fd, std::memory_order_relaxed);
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() wakes the blocked accept() so the loop observes !running_.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void HttpExporter::AcceptLoop() {
  for (;;) {
    int fd = listen_fd_.load(std::memory_order_relaxed);
    if (fd < 0 || !running()) {
      return;
    }
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed by Stop(), or unrecoverable
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

HttpResponse HttpExporter::Dispatch(const HttpRequest& request) {
  HttpHandler handler;
  RouteHandler route;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) {
      handler = it->second;  // copy: run outside the lock
    } else {
      // Longest-prefix route: "/v1/jobs" serves "/v1/jobs" and everything
      // under "/v1/jobs/...". Reverse iteration over the sorted map visits
      // longer (lexicographically greater) candidates first.
      for (auto rit = prefix_routes_.rbegin(); rit != prefix_routes_.rend(); ++rit) {
        const std::string& prefix = rit->first;
        if (request.path == prefix ||
            (request.path.size() > prefix.size() &&
             request.path.compare(0, prefix.size(), prefix) == 0 &&
             request.path[prefix.size()] == '/')) {
          route = rit->second;
          break;
        }
      }
    }
  }
  if (handler) {
    // Exact-path handlers are the GET-only telemetry surface.
    if (request.method != "GET") {
      return HttpResponse{405, "text/plain; charset=utf-8", "method not allowed\n"};
    }
    return handler(request.query);
  }
  if (route) {
    return route(request);
  }
  return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
}

void HttpExporter::ServeConnection(int fd) {
  // Read until the end of the request headers. 8 KB bounds a misbehaving
  // client; the body, when announced, is read separately below.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t header_end = request.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return;
  }
  size_t line_end = request.find("\r\n");
  std::string line = request.substr(0, line_end);  // "GET /path HTTP/1.1"
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = req.path.find('?');
  if (qmark != std::string::npos) {
    req.query = req.path.substr(qmark + 1);
    req.path.resize(qmark);
  }

  HttpResponse resp;
  bool dispatched = false;
  std::string headers = request.substr(0, header_end);
  std::string length_text = HeaderValue(headers, "Content-Length");
  if (!length_text.empty()) {
    if (length_text.find_first_not_of("0123456789") != std::string::npos) {
      resp = HttpResponse{400, "application/json", "{\"error\":\"bad Content-Length\"}\n"};
      dispatched = true;
    } else {
      // strtoull saturates on overflow, which the ceiling check then catches.
      uint64_t announced = std::strtoull(length_text.c_str(), nullptr, 10);
      if (announced > max_body_bytes_.load(std::memory_order_relaxed)) {
        // Refuse before reading: the connection closes with the body unread,
        // which is exactly what a bounded server should do to a flood.
        resp = HttpResponse{413, "application/json",
                            "{\"error\":\"request body too large\"}\n"};
        dispatched = true;
      } else {
        req.body = request.substr(header_end + 4);
        while (req.body.size() < announced) {
          ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n <= 0) {
            return;  // client vanished mid-body: nothing to answer
          }
          req.body.append(buf, static_cast<size_t>(n));
        }
        req.body.resize(announced);
      }
    }
  }
  if (!dispatched) {
    resp = Dispatch(req);
  }
  MetricsRegistry::Global().counter("telemetry.http_requests").Add();

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " + StatusText(resp.status) +
                    "\r\nContent-Type: " + resp.content_type;
  for (const auto& [name, value] : resp.headers) {
    out += "\r\n" + name + ": " + value;
  }
  out += "\r\nContent-Length: " + std::to_string(resp.body.size()) +
         "\r\nConnection: close\r\n\r\n" + resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a client that hung up turns into an error return, not a
    // process-wide SIGPIPE — a dropped result stream must never kill the
    // daemon.
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace xstream::obs

#endif  // XSTREAM_DISABLE_OBS
