#include "obs/http_exporter.h"

#ifndef XSTREAM_DISABLE_OBS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

// /healthz: liveness plus the per-device backend gauges
// (device.<name>.uring_active, .direct_supported, .uring_fixed_buffers),
// grouped by device — an operator's one-request answer to "is it up, and
// did the fast I/O paths actually engage".
HttpResponse HealthzResponse(double uptime_seconds) {
  JsonWriter w;
  w.BeginObject();
  w.Field("status", "ok");
  w.Field("uptime_seconds", uptime_seconds);
  w.Field("pid", static_cast<uint64_t>(::getpid()));
  w.Key("devices").BeginObject();
  std::string open_device;  // gauges arrive sorted, so devices arrive grouped
  MetricsRegistry::Global().ForEachGauge([&](const std::string& name, double value) {
    constexpr std::string_view kPrefix = "device.";
    if (name.rfind(kPrefix, 0) != 0) {
      return;
    }
    size_t dot = name.find('.', kPrefix.size());
    if (dot == std::string::npos) {
      return;
    }
    std::string device = name.substr(kPrefix.size(), dot - kPrefix.size());
    std::string metric = name.substr(dot + 1);
    if (metric != "uring_active" && metric != "direct_supported" &&
        metric != "uring_fixed_buffers") {
      return;
    }
    if (device != open_device) {
      if (!open_device.empty()) {
        w.EndObject();
      }
      w.Key(device).BeginObject();
      open_device = device;
    }
    w.Field(metric, value);
  });
  if (!open_device.empty()) {
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return HttpResponse{200, "application/json", w.TakeString()};
}

// Picks `key=N` out of a raw query string; `fallback` when absent/garbled.
int QueryInt(const std::string& query, const std::string& key, int fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair = query.substr(pos, amp == std::string::npos ? std::string::npos
                                                                  : amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      return std::atoi(pair.c_str() + eq + 1);
    }
    if (amp == std::string::npos) {
      break;
    }
    pos = amp + 1;
  }
  return fallback;
}

// /profile?seconds=N: on-demand folded-stack capture. If the profiler is
// already running (--profile owns it), snapshot the samples so far instead
// of fighting over the process-wide timer. Otherwise run a capture window
// right here — blocking this connection (and further scrapes, the server is
// single-threaded) for N seconds is fine for an operator request.
HttpResponse ProfileResponse(const std::string& query) {
  CpuProfiler& prof = CpuProfiler::Global();
  if (prof.running()) {
    return HttpResponse{200, "text/plain; charset=utf-8", prof.FoldedStacks()};
  }
  int seconds = std::clamp(QueryInt(query, "seconds", 1), 1, 30);
  if (!prof.Start()) {
    return HttpResponse{503, "application/json",
                        "{\"error\":\"profiler unavailable\"}\n"};
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  prof.Stop();
  return HttpResponse{200, "text/plain; charset=utf-8", prof.FoldedStacks()};
}

}  // namespace

HttpExporter::HttpExporter() {
  auto up = std::make_shared<WallTimer>();
  Handle("/metrics", [](const std::string&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        MetricsRegistry::Global().ToPrometheus()};
  });
  Handle("/healthz", [up](const std::string&) { return HealthzResponse(up->Seconds()); });
  Handle("/trace", [](const std::string&) {
    return HttpResponse{200, "application/json", Tracer::Global().ToChromeJson()};
  });
  Handle("/attribution", [](const std::string&) {
    return HttpResponse{200, "application/json", AttributionRegistry::Global().ToJson()};
  });
  Handle("/profile", [](const std::string& query) { return ProfileResponse(query); });
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
}

bool HttpExporter::Start(uint16_t port) {
  if (running()) {
    return true;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    XS_LOG(Error) << "telemetry: socket() failed: " << std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    XS_LOG(Error) << "telemetry: bind(127.0.0.1:" << port
                  << ") failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    XS_LOG(Error) << "telemetry: listen() failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    XS_LOG(Error) << "telemetry: getsockname() failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_.store(fd, std::memory_order_relaxed);
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() wakes the blocked accept() so the loop observes !running_.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void HttpExporter::AcceptLoop() {
  for (;;) {
    int fd = listen_fd_.load(std::memory_order_relaxed);
    if (fd < 0 || !running()) {
      return;
    }
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed by Stop(), or unrecoverable
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

HttpResponse HttpExporter::Dispatch(const std::string& path, const std::string& query) {
  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(path);
    if (it != handlers_.end()) {
      handler = it->second;  // copy: run outside the lock
    }
  }
  if (!handler) {
    return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  }
  return handler(query);
}

void HttpExporter::ServeConnection(int fd) {
  // Read until the end of the request headers (the body, if any, is
  // ignored — every route is a GET). 8 KB bounds a misbehaving client.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    return;
  }
  std::string line = request.substr(0, line_end);  // "GET /path HTTP/1.1"
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    query = path.substr(qmark + 1);
    path.resize(qmark);
  }

  HttpResponse resp;
  if (method != "GET") {
    resp = HttpResponse{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    resp = Dispatch(path, query);
  }
  MetricsRegistry::Global().counter("telemetry.http_requests").Add();

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " + StatusText(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a client that hung up turns into an error return, not a
    // process-wide SIGPIPE.
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace xstream::obs

#endif  // XSTREAM_DISABLE_OBS
